package ids

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/shapes"
	"repro/internal/voting"
)

func TestHostIDSValidate(t *testing.T) {
	if err := (HostIDS{P1: 0.01, P2: 0.01}).Validate(); err != nil {
		t.Errorf("valid host IDS rejected: %v", err)
	}
	for _, h := range []HostIDS{{P1: -1}, {P1: 2}, {P2: -0.5}, {P2: 1.1}} {
		if err := h.Validate(); err == nil {
			t.Errorf("invalid host IDS %+v accepted", h)
		}
	}
}

func TestHostIDSPresets(t *testing.T) {
	m, a := MisuseDetection(), AnomalyDetection()
	if !(m.P1 > m.P2) {
		t.Error("misuse detection should have p1 > p2")
	}
	if !(a.P2 > a.P1) {
		t.Error("anomaly detection should have p2 > p1")
	}
}

func TestHostIDSAssessFrequencies(t *testing.T) {
	rng := des.NewStream(1)
	h := HostIDS{P1: 0.2, P2: 0.1}
	n := 100000
	missed, flagged := 0, 0
	for i := 0; i < n; i++ {
		if !h.Assess(rng, true) {
			missed++
		}
		if h.Assess(rng, false) {
			flagged++
		}
	}
	if f := float64(missed) / float64(n); math.Abs(f-0.2) > 0.01 {
		t.Errorf("miss rate %v, want ~0.2", f)
	}
	if f := float64(flagged) / float64(n); math.Abs(f-0.1) > 0.01 {
		t.Errorf("false flag rate %v, want ~0.1", f)
	}
}

func makeMembers(nGood, nBad int) []NodeState {
	ms := make([]NodeState, 0, nGood+nBad)
	for i := 0; i < nGood; i++ {
		ms = append(ms, NodeState{ID: i})
	}
	for i := 0; i < nBad; i++ {
		ms = append(ms, NodeState{ID: nGood + i, Compromised: true})
	}
	return ms
}

func TestRunVotePerfectDetectorsEvictBad(t *testing.T) {
	rng := des.NewStream(2)
	members := makeMembers(10, 1)
	bad := members[10]
	host := HostIDS{}
	for trial := 0; trial < 50; trial++ {
		o, err := RunVote(rng, members, bad, 5, host)
		if err != nil {
			t.Fatal(err)
		}
		if !o.Evict {
			t.Fatalf("perfect detectors failed to evict a lone bad node: %+v", o)
		}
		if o.Participants != 5 {
			t.Errorf("participants = %d, want 5", o.Participants)
		}
	}
}

func TestRunVotePerfectDetectorsKeepGood(t *testing.T) {
	rng := des.NewStream(3)
	members := makeMembers(10, 0)
	host := HostIDS{}
	for trial := 0; trial < 50; trial++ {
		o, err := RunVote(rng, members, members[0], 5, host)
		if err != nil {
			t.Fatal(err)
		}
		if o.Evict {
			t.Fatalf("perfect detectors evicted a good node: %+v", o)
		}
	}
}

func TestRunVoteColludingMajorityWins(t *testing.T) {
	// 2 good + 5 bad: any panel of 5 has >= 3 colluders, who always evict
	// the good target and keep bad targets.
	rng := des.NewStream(4)
	members := makeMembers(2, 5)
	host := HostIDS{}
	good := members[0]
	badTarget := members[2]
	for trial := 0; trial < 30; trial++ {
		o, err := RunVote(rng, members, good, 5, host)
		if err != nil {
			t.Fatal(err)
		}
		if !o.Evict {
			t.Fatalf("colluding majority failed to evict good node (colluders=%d)", o.Colluders)
		}
		o, err = RunVote(rng, members, badTarget, 5, host)
		if err != nil {
			t.Fatal(err)
		}
		if o.Evict {
			t.Fatalf("colluding majority let a bad node be evicted")
		}
	}
}

func TestRunVotePoolSmallerThanM(t *testing.T) {
	rng := des.NewStream(5)
	members := makeMembers(3, 0)
	o, err := RunVote(rng, members, members[0], 9, HostIDS{})
	if err != nil {
		t.Fatal(err)
	}
	if o.Participants != 2 {
		t.Errorf("participants = %d, want 2 (pool-capped)", o.Participants)
	}
}

func TestRunVoteSingleton(t *testing.T) {
	rng := des.NewStream(6)
	members := makeMembers(1, 0)
	o, err := RunVote(rng, members, members[0], 5, HostIDS{})
	if err != nil {
		t.Fatal(err)
	}
	if o.Evict || o.Participants != 0 {
		t.Errorf("singleton vote outcome %+v, want no participants / no eviction", o)
	}
}

func TestRunVoteValidation(t *testing.T) {
	rng := des.NewStream(7)
	members := makeMembers(3, 0)
	if _, err := RunVote(rng, members, members[0], 0, HostIDS{}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := RunVote(rng, members, members[0], 3, HostIDS{P1: 9}); err == nil {
		t.Error("bad host IDS accepted")
	}
}

func TestRunVoteMatchesEquationOneStatistically(t *testing.T) {
	// The protocol runtime must reproduce the closed-form Pfp/Pfn of
	// package voting (the two implementations are independent).
	rng := des.NewStream(8)
	nGood, nBad, m := 12, 3, 5
	p1, p2 := 0.05, 0.08
	host := HostIDS{P1: p1, P2: p2}
	members := makeMembers(nGood, nBad)
	trials := 60000
	evictGood, keepBad := 0, 0
	for i := 0; i < trials; i++ {
		o, err := RunVote(rng, members, members[0], m, host) // good target
		if err != nil {
			t.Fatal(err)
		}
		if o.Evict {
			evictGood++
		}
		o, err = RunVote(rng, members, members[nGood], m, host) // bad target
		if err != nil {
			t.Fatal(err)
		}
		if !o.Evict {
			keepBad++
		}
	}
	gotPfp := float64(evictGood) / float64(trials)
	gotPfn := float64(keepBad) / float64(trials)
	wantPfp := voting.FalsePositive(nGood, nBad, m, p2)
	wantPfn := voting.FalseNegative(nGood, nBad, m, p1)
	if math.Abs(gotPfp-wantPfp) > 0.01 {
		t.Errorf("runtime Pfp %v vs Equation 1 %v", gotPfp, wantPfp)
	}
	if math.Abs(gotPfn-wantPfn) > 0.01 {
		t.Errorf("runtime Pfn %v vs Equation 1 %v", gotPfn, wantPfn)
	}
}

func TestRunRoundCountsErrors(t *testing.T) {
	rng := des.NewStream(9)
	members := makeMembers(8, 2)
	res, err := RunRound(rng, members, 5, HostIDS{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 10 {
		t.Fatalf("outcomes = %d, want 10", len(res.Outcomes))
	}
	// Perfect detectors with a bad minority: both bad nodes evicted, no
	// false positives or negatives.
	if len(res.Evictions) != 2 || res.FalsePositives != 0 || res.FalseNegatives != 0 {
		t.Errorf("round result %+v, want exactly the 2 bad nodes evicted", res)
	}
}

func TestControllerIntervalShrinksWithEvictions(t *testing.T) {
	c := Controller{
		Detection: shapes.Detection{Kind: shapes.Linear, TIDS: 120},
		NInit:     100,
	}
	full := c.NextInterval(100)
	if math.Abs(full-120) > 1e-9 {
		t.Errorf("full-group interval = %v, want 120", full)
	}
	half := c.NextInterval(50)
	if math.Abs(half-60) > 1e-9 {
		t.Errorf("half-group interval = %v, want 60", half)
	}
	if c.NextInterval(25) >= half {
		t.Error("interval must keep shrinking as members are evicted")
	}
}

func synthCompromiseTimes(kind shapes.Kind, lambdaC float64, nInit, count int, seed int64) []float64 {
	rng := des.NewStream(seed)
	a := shapes.Attacker{Kind: kind, LambdaC: lambdaC}
	var times []float64
	now := 0.0
	for i := 0; i < count; i++ {
		mc := shapes.Pressure(nInit-i, i)
		now += rng.Exp(a.Rate(mc))
		times = append(times, now)
	}
	return times
}

func TestClassifyAttackerRecoversKind(t *testing.T) {
	// With enough observations the MLE classifier must recover the
	// generating shape. Polynomial vs linear vs log separate quickly
	// because the rates diverge by orders of magnitude at high mc.
	nInit := 100
	for _, kind := range shapes.Kinds() {
		correct := 0
		trials := 20
		for s := int64(0); s < int64(trials); s++ {
			times := synthCompromiseTimes(kind, 1.0/3600, nInit, 90, 100+s)
			got, err := ClassifyAttacker(times, nInit, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got == kind {
				correct++
			}
		}
		if correct < trials*3/4 {
			t.Errorf("classifier recovered %v only %d/%d times", kind, correct, trials)
		}
	}
}

func TestClassifyAttackerValidation(t *testing.T) {
	if _, err := ClassifyAttacker([]float64{1, 2}, 10, 0); err == nil {
		t.Error("too few times accepted")
	}
	if _, err := ClassifyAttacker([]float64{1, 2, 2}, 10, 0); err == nil {
		t.Error("non-increasing times accepted")
	}
}

func TestBestResponseIdentity(t *testing.T) {
	for _, k := range shapes.Kinds() {
		if BestResponse(k) != k {
			t.Errorf("BestResponse(%v) = %v", k, BestResponse(k))
		}
	}
}

func TestAdaptivePlan(t *testing.T) {
	times := synthCompromiseTimes(shapes.Polynomial, 1.0/3600, 30, 20, 55)
	d, err := AdaptivePlan(times, 30, 0, 120)
	if err != nil {
		t.Fatal(err)
	}
	if d.TIDS != 120 {
		t.Errorf("plan TIDS = %v", d.TIDS)
	}
	if d.Kind != shapes.Polynomial {
		t.Logf("classifier picked %v for a polynomial attacker (acceptable occasionally)", d.Kind)
	}
	if _, err := AdaptivePlan([]float64{1}, 30, 0, 120); err == nil {
		t.Error("short history accepted")
	}
}
