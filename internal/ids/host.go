// Package ids implements the distributed intrusion detection protocols of
// Section 2.2: the host-based IDS error model (per-node false negative p1
// and false positive p2), the voting-based IDS protocol runtime (dynamic
// selection of m vote participants, malicious voting by colluding
// compromised nodes, strict-majority eviction), and the adaptive control
// layer that classifies the attacker's strength function at runtime and
// selects the matching detection function and interval.
package ids

import (
	"fmt"

	"repro/internal/des"
)

// HostIDS models any preinstalled per-node detection technique (misuse or
// anomaly detection) by its two error probabilities, exactly as the paper
// abstracts it: "we measure the effectiveness of IDS techniques applied
// ... by two parameters, the false negative probability (p1) and false
// positive probability (p2)".
type HostIDS struct {
	P1 float64 // P(healthy verdict | target compromised)
	P2 float64 // P(compromised verdict | target healthy)
}

// Validate checks the probabilities.
func (h HostIDS) Validate() error {
	if h.P1 < 0 || h.P1 > 1 {
		return fmt.Errorf("ids: p1 = %v outside [0,1]", h.P1)
	}
	if h.P2 < 0 || h.P2 > 1 {
		return fmt.Errorf("ids: p2 = %v outside [0,1]", h.P2)
	}
	return nil
}

// MisuseDetection returns a host IDS parameterization typical of
// signature-based detection: more false negatives, fewer false positives
// (the paper's characterization).
func MisuseDetection() HostIDS { return HostIDS{P1: 0.05, P2: 0.005} }

// AnomalyDetection returns a host IDS parameterization typical of
// anomaly-based detection: fewer false negatives, more false positives.
func AnomalyDetection() HostIDS { return HostIDS{P1: 0.005, P2: 0.05} }

// Assess returns this node's verdict on a target: true means "compromised"
// (a negative vote in the voting protocol). The verdict errs with p1 or p2
// depending on the target's true state.
func (h HostIDS) Assess(rng *des.Stream, targetCompromised bool) bool {
	if targetCompromised {
		return !rng.Bernoulli(h.P1) // missed with probability p1
	}
	return rng.Bernoulli(h.P2) // falsely flagged with probability p2
}
