package ids

import (
	"fmt"
	"math"

	"repro/internal/shapes"
)

// Controller schedules the next IDS invocation according to the detection
// function D(md): the interval shrinks as more compromised nodes are
// detected and evicted (md = Ninit / active members grows).
type Controller struct {
	Detection shapes.Detection
	NInit     int // initial group population
}

// NextInterval returns the time until the next detection round given the
// current number of active members (trusted + undetected compromised).
func (c Controller) NextInterval(activeMembers int) float64 {
	md := shapes.EvictionPressure(c.NInit, activeMembers, 0)
	rate := c.Detection.Rate(md)
	if rate <= 0 {
		return math.Inf(1)
	}
	return 1 / rate
}

// ClassifyAttacker infers which attacker strength function (logarithmic,
// linear, or polynomial) best explains a sequence of observed compromise
// times, implementing the runtime attacker-strength detection the adaptive
// protocol of Section 5 relies on ("the system could adjust the IDS
// detection strength in response to the attacker strength detected at
// runtime").
//
// Model: the i-th inter-compromise gap is exponential with rate
// lambdaC * g(mc_i) where g is the candidate shape and mc_i the compromise
// pressure after i compromises. For each candidate shape the maximum
// likelihood lambdaC is total-shape-weight / total-time; the candidate with
// the highest resulting log-likelihood wins. At least 3 compromise times
// are required.
func ClassifyAttacker(times []float64, nInit int, p float64) (shapes.Kind, error) {
	if len(times) < 3 {
		return 0, fmt.Errorf("ids: need >= 3 compromise times to classify, got %d", len(times))
	}
	if p == 0 {
		p = shapes.DefaultP
	}
	prev := 0.0
	gaps := make([]float64, 0, len(times))
	for i, t := range times {
		if t <= prev {
			return 0, fmt.Errorf("ids: compromise times must be strictly increasing (index %d)", i)
		}
		gaps = append(gaps, t-prev)
		prev = t
	}
	best := shapes.Linear
	bestLL := math.Inf(-1)
	for _, kind := range shapes.Kinds() {
		ll := shapeLogLikelihood(kind, gaps, nInit, p)
		if ll > bestLL {
			bestLL, best = ll, kind
		}
	}
	return best, nil
}

// shapeLogLikelihood computes the profile log-likelihood of the gap
// sequence under the candidate shape with lambdaC maximized out.
func shapeLogLikelihood(kind shapes.Kind, gaps []float64, nInit int, p float64) float64 {
	a := shapes.Attacker{Kind: kind, LambdaC: 1, P: p}
	// Weight of gap i: g(mc_i) with i prior compromises. mc as in the SPN
	// parameterization: (Tm + UCm)/Tm with Tm = nInit - i, UCm = i.
	w := make([]float64, len(gaps))
	sumWT := 0.0
	for i := range gaps {
		mc := shapes.Pressure(nInit-i, i)
		w[i] = a.Rate(mc)
		sumWT += w[i] * gaps[i]
	}
	if sumWT <= 0 {
		return math.Inf(-1)
	}
	// MLE: lambda = n / sum(w_i t_i). LL = sum(log(lambda w_i)) - lambda*sum(w_i t_i).
	n := float64(len(gaps))
	lambda := n / sumWT
	ll := -lambda * sumWT
	for i := range gaps {
		ll += math.Log(lambda * w[i])
	}
	return ll
}

// BestResponse returns the paper's heuristic response to a classified
// attacker kind: match the detection growth to the attacker growth (Figure
// 4 reports the linear detection function as best against the linear
// attacker). When a model evaluation is affordable at runtime, prefer
// core.BestDetection, which sweeps all three shapes against the classified
// attacker instead of assuming the identity mapping is optimal.
func BestResponse(attacker shapes.Kind) shapes.Kind { return attacker }

// AdaptivePlan couples classification and response: given observed
// compromise times it returns the detection function to switch to.
func AdaptivePlan(times []float64, nInit int, p float64, tids float64) (shapes.Detection, error) {
	kind, err := ClassifyAttacker(times, nInit, p)
	if err != nil {
		return shapes.Detection{}, err
	}
	return shapes.Detection{Kind: BestResponse(kind), TIDS: tids, P: p}, nil
}
