// Package shapes implements the attacker-strength and detection-strength
// shape functions of Section 4.1 of the paper: logarithmic, linear, and
// polynomial growth of the node-compromising rate A(mc) and of the IDS
// invocation rate D(md).
//
// The paper normalizes both families so that the linear member passes
// through the base rate at argument 1 (one "unit" of compromise pressure).
// Its logarithmic member as literally written, λc·log_p(mc), is degenerate
// at mc = 1 (rate zero, so the attack never starts); we therefore use the
// shifted form log_p(x + p − 1), which equals 1 at x = 1 and preserves the
// ordering log < linear < poly for x > 1 that the paper's analysis relies
// on. The substitution is recorded in DESIGN.md.
package shapes

import (
	"fmt"
	"math"
)

// Kind selects one of the three growth shapes.
type Kind int

const (
	// Logarithmic grows like log_p(x + p - 1): the conservative shape.
	Logarithmic Kind = iota
	// Linear grows like x: the paper's reference shape.
	Linear
	// Polynomial grows like x^p: the aggressive shape.
	Polynomial
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Logarithmic:
		return "logarithmic"
	case Linear:
		return "linear"
	case Polynomial:
		return "polynomial"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a string (as used in CLI flags) to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "log", "logarithmic":
		return Logarithmic, nil
	case "linear":
		return Linear, nil
	case "poly", "polynomial", "exponential":
		return Polynomial, nil
	default:
		return 0, fmt.Errorf("shapes: unknown kind %q (want log|linear|poly)", s)
	}
}

// Kinds lists the three shapes in the order the paper plots them.
func Kinds() []Kind { return []Kind{Logarithmic, Linear, Polynomial} }

// DefaultP is the base index parameter the paper selects ("we choose p=3").
const DefaultP = 3.0

// grow evaluates the normalized shape g(x) with g(1) = 1 for every kind.
// Arguments below 1 are clamped to 1: both mc and md are >= 1 by
// construction, and clamping keeps numerical noise out of the rates.
func grow(k Kind, x, p float64) float64 {
	if x < 1 {
		x = 1
	}
	switch k {
	case Logarithmic:
		return math.Log(x+p-1) / math.Log(p)
	case Linear:
		return x
	case Polynomial:
		return math.Pow(x, p)
	default:
		panic(fmt.Sprintf("shapes: invalid kind %d", int(k)))
	}
}

// Attacker is the attacker function A(mc): the rate at which nodes are
// compromised, given the compromise pressure mc = (Tm + UCm) / Tm.
type Attacker struct {
	Kind    Kind
	LambdaC float64 // base compromising rate (per second)
	P       float64 // shape index; DefaultP when zero
}

// Rate returns A(mc) in compromises per second.
func (a Attacker) Rate(mc float64) float64 {
	p := a.P
	if p == 0 {
		p = DefaultP
	}
	return a.LambdaC * grow(a.Kind, mc, p)
}

// Pressure computes mc from the token counts of the SPN model:
// mc = (mark(Tm) + mark(UCm)) / mark(Tm). When no trusted member remains
// the pressure is pinned to its polynomial-dominating maximum, tm+uc, to
// keep the model finite.
func Pressure(tm, uc int) float64 {
	if tm <= 0 {
		return float64(tm + uc)
	}
	return float64(tm+uc) / float64(tm)
}

// Detection is the detection function D(md): the rate at which voting-based
// IDS rounds are invoked, given the eviction pressure
// md = Ninit / (Tm + UCm).
type Detection struct {
	Kind Kind
	TIDS float64 // base detection interval (seconds)
	P    float64 // shape index; DefaultP when zero
}

// Rate returns D(md) in IDS invocations per second.
func (d Detection) Rate(md float64) float64 {
	p := d.P
	if p == 0 {
		p = DefaultP
	}
	if d.TIDS <= 0 {
		panic(fmt.Sprintf("shapes: non-positive TIDS %v", d.TIDS))
	}
	return grow(d.Kind, md, p) / d.TIDS
}

// EvictionPressure computes md from the SPN token counts:
// md = Ninit / (mark(Tm) + mark(UCm)); pinned to Ninit when the group has
// emptied.
func EvictionPressure(nInit, tm, uc int) float64 {
	if tm+uc <= 0 {
		return float64(nInit)
	}
	return float64(nInit) / float64(tm+uc)
}
