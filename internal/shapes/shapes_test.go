package shapes

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Logarithmic.String() != "logarithmic" || Linear.String() != "linear" || Polynomial.String() != "polynomial" {
		t.Error("Kind.String wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("invalid kind String wrong")
	}
}

func TestParseKind(t *testing.T) {
	for _, s := range []string{"log", "logarithmic"} {
		if k, err := ParseKind(s); err != nil || k != Logarithmic {
			t.Errorf("ParseKind(%q) = %v, %v", s, k, err)
		}
	}
	if k, err := ParseKind("linear"); err != nil || k != Linear {
		t.Errorf("ParseKind(linear) = %v, %v", k, err)
	}
	for _, s := range []string{"poly", "polynomial", "exponential"} {
		if k, err := ParseKind(s); err != nil || k != Polynomial {
			t.Errorf("ParseKind(%q) = %v, %v", s, k, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) accepted")
	}
}

func TestNormalizationAtOne(t *testing.T) {
	// All three attacker shapes return exactly lambdaC at mc = 1.
	lc := 1.0 / (12 * 3600)
	for _, k := range Kinds() {
		a := Attacker{Kind: k, LambdaC: lc}
		if got := a.Rate(1); math.Abs(got-lc) > 1e-18 {
			t.Errorf("%v attacker at mc=1: %v, want %v", k, got, lc)
		}
	}
	// All three detection shapes return exactly 1/TIDS at md = 1.
	for _, k := range Kinds() {
		d := Detection{Kind: k, TIDS: 120}
		if got := d.Rate(1); math.Abs(got-1.0/120) > 1e-18 {
			t.Errorf("%v detection at md=1: %v, want %v", k, got, 1.0/120)
		}
	}
}

func TestShapeOrderingAboveOne(t *testing.T) {
	// For x > 1: log < linear < poly — the property the paper's Figures 4
	// and 5 discussion depends on.
	a := map[Kind]Attacker{}
	for _, k := range Kinds() {
		a[k] = Attacker{Kind: k, LambdaC: 1}
	}
	for _, x := range []float64{1.01, 1.5, 2, 3, 10, 50} {
		lg, ln, pl := a[Logarithmic].Rate(x), a[Linear].Rate(x), a[Polynomial].Rate(x)
		if !(lg < ln && ln < pl) {
			t.Errorf("ordering violated at x=%v: log=%v linear=%v poly=%v", x, lg, ln, pl)
		}
	}
}

func TestShapesMonotoneProperty(t *testing.T) {
	f := func(x1Raw, x2Raw float64, kRaw uint8) bool {
		x1 := 1 + math.Abs(x1Raw)
		x2 := x1 + math.Abs(x2Raw)
		if math.IsInf(x2, 0) || math.IsNaN(x2) {
			return true
		}
		k := Kind(int(kRaw) % 3)
		a := Attacker{Kind: k, LambdaC: 2.5}
		return a.Rate(x2) >= a.Rate(x1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClampBelowOne(t *testing.T) {
	a := Attacker{Kind: Polynomial, LambdaC: 3}
	if got, want := a.Rate(0.2), a.Rate(1); got != want {
		t.Errorf("Rate(0.2) = %v, want clamped %v", got, want)
	}
}

func TestPolynomialUsesIndexP(t *testing.T) {
	a := Attacker{Kind: Polynomial, LambdaC: 1, P: 2}
	if got := a.Rate(3); math.Abs(got-9) > 1e-12 {
		t.Errorf("x^2 at 3 = %v, want 9", got)
	}
	a.P = 0 // default p=3
	if got := a.Rate(2); math.Abs(got-8) > 1e-12 {
		t.Errorf("x^3 at 2 = %v, want 8", got)
	}
}

func TestLogarithmicShiftedForm(t *testing.T) {
	// log_3(x + 2): at x = 7 -> log_3(9) = 2.
	a := Attacker{Kind: Logarithmic, LambdaC: 1}
	if got := a.Rate(7); math.Abs(got-2) > 1e-12 {
		t.Errorf("log shape at 7 = %v, want 2", got)
	}
}

func TestPressure(t *testing.T) {
	if got := Pressure(10, 0); got != 1 {
		t.Errorf("Pressure(10,0) = %v, want 1", got)
	}
	if got := Pressure(8, 4); math.Abs(got-1.5) > 1e-15 {
		t.Errorf("Pressure(8,4) = %v, want 1.5", got)
	}
	if got := Pressure(0, 5); got != 5 {
		t.Errorf("Pressure(0,5) = %v, want 5 (pinned)", got)
	}
}

func TestEvictionPressure(t *testing.T) {
	if got := EvictionPressure(100, 100, 0); got != 1 {
		t.Errorf("EvictionPressure full group = %v, want 1", got)
	}
	if got := EvictionPressure(100, 40, 10); got != 2 {
		t.Errorf("EvictionPressure half group = %v, want 2", got)
	}
	if got := EvictionPressure(100, 0, 0); got != 100 {
		t.Errorf("EvictionPressure empty group = %v, want 100 (pinned)", got)
	}
}

func TestDetectionRateScalesWithTIDS(t *testing.T) {
	d1 := Detection{Kind: Linear, TIDS: 60}
	d2 := Detection{Kind: Linear, TIDS: 120}
	if got := d1.Rate(2) / d2.Rate(2); math.Abs(got-2) > 1e-12 {
		t.Errorf("rate ratio = %v, want 2", got)
	}
}

func TestDetectionPanicsOnBadTIDS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Detection with TIDS=0 did not panic")
		}
	}()
	Detection{Kind: Linear, TIDS: 0}.Rate(1)
}

func TestInvalidKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid kind did not panic")
		}
	}()
	Attacker{Kind: Kind(42), LambdaC: 1}.Rate(2)
}
