//go:build repro_nofaults

package faultinject

import (
	"fmt"
	"os"
)

// This build has fault injection compiled out: every probe is a constant
// false the compiler inlines and eliminates, so a production binary built
// with -tags repro_nofaults carries no injection branches at all. Enable
// and EnableFromEnv report the truth — injection cannot be enabled here —
// so a deployment that sets REPRO_FAULTS against a no-faults binary finds
// out at boot instead of silently running faultless.

// Enabled always reports false in a repro_nofaults build.
func Enabled() bool { return false }

// Enable is a no-op in a repro_nofaults build.
func Enable(Plan) {}

// Disable is a no-op in a repro_nofaults build.
func Disable() {}

// EnableFromEnv reports false: this binary cannot inject faults. A set
// REPRO_FAULTS is an error (the operator asked for injection this build
// cannot provide), and a malformed plan is diagnosed identically to the
// injecting build.
func EnableFromEnv() (bool, error) {
	raw := os.Getenv(EnvVar)
	if raw == "" {
		return false, nil
	}
	p, err := ParsePlan(raw)
	if err == nil {
		err = validateKnownSites(p)
	}
	if err != nil {
		return false, fmt.Errorf("%s: %w", EnvVar, err)
	}
	return false, fmt.Errorf("%s is set but this binary was built with -tags repro_nofaults (fault injection compiled out); unset it or rebuild", EnvVar)
}

// Fire always reports false in a repro_nofaults build.
func Fire(string) bool { return false }

// Value always returns the default in a repro_nofaults build.
func Value(_ string, def float64) float64 { return def }

// SleepFor never sleeps in a repro_nofaults build.
func SleepFor(string, string, float64) bool { return false }

// FiredCounts is always nil in a repro_nofaults build.
func FiredCounts() map[string]uint64 { return nil }

// ActiveRates is always nil in a repro_nofaults build.
func ActiveRates() map[string]float64 { return nil }
