//go:build !repro_nofaults

package faultinject

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// state is one enabled plan plus its per-site decision/firing counters.
// The pointer swap in Enable/Disable is the only mutation; everything
// inside is append-only maps of atomics behind a small mutex.
type state struct {
	seed  uint64
	rates map[string]float64 // immutable after Enable

	mu    sync.Mutex
	seq   map[string]*atomic.Uint64 // per-site decision index
	fired map[string]*atomic.Uint64 // per-site fired count
}

var active atomic.Pointer[state]

// Enabled reports whether a fault plan is active. The disabled path is a
// single atomic load — the probes below all start with it.
func Enabled() bool { return active.Load() != nil }

// Enable activates a fault plan process-wide (replacing any active one).
// Rates must already be validated into [0,1]; ParsePlan does that.
func Enable(p Plan) {
	rates := make(map[string]float64, len(p.Rates))
	for k, v := range p.Rates {
		rates[k] = v
	}
	active.Store(&state{
		seed:  p.Seed,
		rates: rates,
		seq:   make(map[string]*atomic.Uint64),
		fired: make(map[string]*atomic.Uint64),
	})
}

// Disable deactivates fault injection; every probe reverts to the
// zero-cost false path.
func Disable() { active.Store(nil) }

// ActiveRates returns a copy of the armed plan's per-site rates, or nil
// when injection is disabled — the observability surface's view of what a
// chaos run armed, alongside FiredCounts' view of what actually fired.
func ActiveRates() map[string]float64 {
	st := active.Load()
	if st == nil {
		return nil
	}
	out := make(map[string]float64, len(st.rates))
	for k, v := range st.rates {
		out[k] = v
	}
	return out
}

// EnableFromEnv activates the plan in $REPRO_FAULTS when the variable is
// set and parseable, reporting whether injection is now enabled. An unset
// or empty variable is a normal production boot (false, nil).
func EnableFromEnv() (bool, error) {
	raw := os.Getenv(EnvVar)
	if raw == "" {
		return false, nil
	}
	p, err := ParsePlan(raw)
	if err == nil {
		err = validateKnownSites(p)
	}
	if err != nil {
		return false, fmt.Errorf("%s: %w", EnvVar, err)
	}
	Enable(p)
	return true, nil
}

// counter returns the named per-site counter from m, creating it under the
// lock on first use.
func (st *state) counter(m map[string]*atomic.Uint64, site string) *atomic.Uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	c, ok := m[site]
	if !ok {
		c = &atomic.Uint64{}
		m[site] = c
	}
	return c
}

// Fire probes site once: with no active plan (or a zero rate for site) it
// returns false; otherwise the site's next decision index is drawn against
// its configured rate. Fired probes are counted for FiredCounts.
func Fire(site string) bool {
	st := active.Load()
	if st == nil {
		return false
	}
	rate, ok := st.rates[site]
	if !ok || rate <= 0 {
		return false
	}
	n := st.counter(st.seq, site).Add(1)
	if !decide(st.seed, site, n, rate) {
		return false
	}
	st.counter(st.fired, site).Add(1)
	return true
}

// Value returns the active plan's parameter for key, or def when no plan
// is active or the key is unset.
func Value(key string, def float64) float64 {
	st := active.Load()
	if st == nil {
		return def
	}
	if v, ok := st.rates[key]; ok {
		return v
	}
	return def
}

// SleepFor probes site and, when it fires, sleeps for the msKey parameter
// (default defMS milliseconds), reporting whether it slept. It is the
// shared shape of the latency/hang sites.
func SleepFor(site, msKey string, defMS float64) bool {
	if !Fire(site) {
		return false
	}
	time.Sleep(time.Duration(Value(msKey, defMS) * float64(time.Millisecond)))
	return true
}

// FiredCounts snapshots how many times each site has fired since Enable
// (sites that never fired are absent). Nil when injection is disabled.
func FiredCounts() map[string]uint64 {
	st := active.Load()
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]uint64, len(st.fired))
	for site, c := range st.fired {
		if n := c.Load(); n > 0 {
			out[site] = n
		}
	}
	return out
}
