//go:build !repro_nofaults

package faultinject

import (
	"math"
	"strings"
	"testing"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=42, solver.breakdown=0.25,http.err5xx=1, solver.hang_ms=150")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Errorf("seed = %d, want 42", p.Seed)
	}
	if p.Rates[SolverBreakdown] != 0.25 || p.Rates[HTTPErr5xx] != 1 || p.Rates[SolverHangMS] != 150 {
		t.Errorf("rates = %v", p.Rates)
	}

	for _, bad := range []string{"seed=abc", "solver.breakdown=1.5", "solver.breakdown=-0.1", "noequals", "=0.5"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}

	// Parameters are exempt from the [0,1] rate bound.
	if _, err := ParsePlan("http.latency_ms=500"); err != nil {
		t.Errorf("parameter rejected: %v", err)
	}
}

func TestDisabledIsInert(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() with no plan")
	}
	for i := 0; i < 100; i++ {
		if Fire(SolverBreakdown) {
			t.Fatal("Fire with no plan")
		}
	}
	if v := Value(SolverHangMS, 123); v != 123 {
		t.Errorf("Value default = %v, want 123", v)
	}
	if FiredCounts() != nil {
		t.Error("FiredCounts with no plan should be nil")
	}
}

// TestDeterministicSchedule pins the core property CI's seed matrix rests
// on: the same seed yields the same per-site firing schedule.
func TestDeterministicSchedule(t *testing.T) {
	t.Cleanup(Disable)
	run := func(seed uint64) []bool {
		Enable(Plan{Seed: seed, Rates: map[string]float64{SolverBreakdown: 0.3}})
		out := make([]bool, 1000)
		for i := range out {
			out[i] = Fire(SolverBreakdown)
		}
		return out
	}
	a, b := run(7), run(7)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at probe %d under the same seed", i)
		}
		if a[i] {
			fired++
		}
	}
	// The empirical rate should be near 0.3 (binomial, n=1000).
	if rate := float64(fired) / 1000; math.Abs(rate-0.3) > 0.08 {
		t.Errorf("empirical rate %.3f, want ~0.3", rate)
	}
	c := run(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestFiredCountsAndValue(t *testing.T) {
	t.Cleanup(Disable)
	Enable(Plan{Seed: 1, Rates: map[string]float64{
		EnginePanic:   1,
		SolverHang:    0,
		SolverHangMS:  250,
		HTTPLatencyMS: 0,
	}})
	if !Enabled() {
		t.Fatal("not enabled")
	}
	for i := 0; i < 5; i++ {
		if !Fire(EnginePanic) {
			t.Fatal("rate-1 site did not fire")
		}
		if Fire(SolverHang) {
			t.Fatal("rate-0 site fired")
		}
		if Fire("no.such.site") {
			t.Fatal("unconfigured site fired")
		}
	}
	got := FiredCounts()
	if got[EnginePanic] != 5 {
		t.Errorf("FiredCounts[%s] = %d, want 5", EnginePanic, got[EnginePanic])
	}
	if _, ok := got[SolverHang]; ok {
		t.Error("never-fired site present in FiredCounts")
	}
	if v := Value(SolverHangMS, 1); v != 250 {
		t.Errorf("Value(%s) = %v, want 250", SolverHangMS, v)
	}
	if v := Value(HTTPLatencyMS, 99); v != 0 {
		t.Errorf("explicit zero parameter = %v, want 0", v)
	}
}

func TestPlanString(t *testing.T) {
	p, err := ParsePlan("seed=9,b.site=0.5,a.site=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.String(), "seed=9,a.site=0.25,b.site=0.5"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	// Round trip.
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if p2.Seed != p.Seed || len(p2.Rates) != len(p.Rates) {
		t.Errorf("round trip lost data: %v vs %v", p2, p)
	}
}

func TestEnableFromEnvRejectsUnknownSites(t *testing.T) {
	t.Cleanup(Disable)
	// A typo'd site name must refuse to arm: the operator asked for a
	// chaos schedule this build would silently never probe.
	t.Setenv(EnvVar, "seed=42,http.bogus=0.5")
	if _, err := EnableFromEnv(); err == nil {
		t.Fatal("EnableFromEnv armed a plan with an unknown site")
	} else if !strings.Contains(err.Error(), "http.bogus") {
		t.Errorf("error %v does not name the unknown site", err)
	}
	if Enabled() {
		t.Fatal("injection enabled despite the rejected plan")
	}
	// Every documented site (rates and _ms parameters) must pass.
	t.Setenv(EnvVar, "seed=1,solver.breakdown=0.1,solver.nonfinite=0.1,"+
		"solver.hang=0.1,solver.hang_ms=5,engine.panic=0.1,engine.nonfinite=0.1,"+
		"persist.torn=0.1,persist.fsync=0.1,http.err5xx=0.1,http.reset=0.1,"+
		"http.latency=0.1,http.latency_ms=5")
	if armed, err := EnableFromEnv(); err != nil {
		t.Fatalf("full known-site plan rejected: %v", err)
	} else if !armed {
		t.Fatal("full known-site plan did not arm")
	}
}

// TestEnableFromEnvClusterSites pins the cluster fault sites into the
// validated vocabulary: every peer.* site this build probes arms cleanly,
// and a near-miss typo is refused by name instead of silently never
// firing during a chaos run.
func TestEnableFromEnvClusterSites(t *testing.T) {
	t.Cleanup(Disable)
	t.Setenv(EnvVar, "seed=7,"+PeerDown+"=0.1,"+PeerPartition+"=0.1,"+
		PeerReset+"=0.1,"+PeerLatency+"=0.1,"+PeerLatencyMS+"=5")
	if armed, err := EnableFromEnv(); err != nil {
		t.Fatalf("cluster-site plan rejected: %v", err)
	} else if !armed {
		t.Fatal("cluster-site plan did not arm")
	}
	Disable()

	for _, typo := range []string{"peer.dwon", "peer.partiton", "peers.down", "peer.latencyms"} {
		t.Setenv(EnvVar, "seed=7,"+typo+"=0.5")
		if _, err := EnableFromEnv(); err == nil {
			t.Errorf("typo'd cluster site %q armed", typo)
		} else if !strings.Contains(err.Error(), typo) {
			t.Errorf("error %v does not name the typo'd site %q", err, typo)
		}
		if Enabled() {
			t.Fatalf("injection enabled despite rejected site %q", typo)
		}
	}
}
