// Package faultinject is the deterministic fault-injection seam the chaos
// suite drives the system's failure paths through. Production code calls
// Fire(site) at each injection point; when no plan is active that is a
// single atomic pointer load returning false, and a build with the
// repro_nofaults tag compiles every probe down to a constant false — the
// seam costs nothing where it is not used.
//
// A plan is seed-driven and fully deterministic per decision index: the
// k-th probe of a site fires iff a splitmix64 hash of (seed, site, k)
// falls under the site's configured rate. Two runs with the same seed and
// the same per-site probe counts therefore inject the same fault schedule
// (under concurrency the assignment of indices to goroutines follows the
// scheduler, but the multiset of decisions per site is identical), which
// is what lets CI run the chaos suite over a fixed seed matrix.
//
// The operator-facing knob is the REPRO_FAULTS environment variable:
//
//	REPRO_FAULTS="seed=42,solver.breakdown=0.2,http.err5xx=0.05,solver.hang_ms=100"
//
// Keys ending in "_ms" (and "seed") are parameters, everything else is a
// firing probability in [0,1] for the named site. EnableFromEnv rejects
// site names this build does not know: a typo'd site would arm a chaos run
// that silently tests nothing, which is worse than no run. Programmatic
// Enable stays permissive (an unregistered site simply never probes), so
// tests can use synthetic site names.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Injection-site and parameter names. Sites are probabilities; *_ms names
// are millisecond parameters read with Value.
const (
	// SolverBreakdown forces the primary solver backend to report a
	// breakdown before attempting the solve (ctmc degradation ladder).
	SolverBreakdown = "solver.breakdown"
	// SolverNonFinite corrupts the primary backend's solution vector with
	// a NaN, exercising the finite/residual validation gate.
	SolverNonFinite = "solver.nonfinite"
	// SolverHang stalls the primary solve attempt for SolverHangMS
	// milliseconds, exercising the service's per-solve watchdog.
	SolverHang   = "solver.hang"
	SolverHangMS = "solver.hang_ms"

	// EnginePanic panics inside an engine evaluation (recovered, converted
	// to an error, propagated to all in-flight joiners).
	EnginePanic = "engine.panic"
	// EngineNonFinite corrupts a finished Result with a NaN after the
	// solve, exercising the engine's cache-admission validation.
	EngineNonFinite = "engine.nonfinite"

	// PersistTorn tears a snapshot save: half the container bytes are
	// written to the final path (bypassing the atomic tmp+rename, as a
	// crash or non-atomic filesystem would) and the save reports an error.
	PersistTorn = "persist.torn"
	// PersistFsync fails the snapshot fsync, exercising the checkpointer's
	// error backoff without touching the previous file.
	PersistFsync = "persist.fsync"

	// HTTPErr5xx answers an eval/batch request with a transient 503 before
	// the handler runs (retrying-client exercise).
	HTTPErr5xx = "http.err5xx"
	// HTTPReset aborts the HTTP connection mid-request, which the client
	// observes as a transport error.
	HTTPReset = "http.reset"
	// HTTPLatency delays a request by HTTPLatencyMS milliseconds.
	HTTPLatency   = "http.latency"
	HTTPLatencyMS = "http.latency_ms"

	// PeerDown makes a cluster peer call fail before it is sent, as a dead
	// peer process (connection refused) would.
	PeerDown = "peer.down"
	// PeerLatency delays a peer call by PeerLatencyMS milliseconds,
	// modeling a lagging peer or congested link.
	PeerLatency   = "peer.latency"
	PeerLatencyMS = "peer.latency_ms"
	// PeerReset drops a peer call's response after the request was sent:
	// the remote side did the work (and cached it), the caller sees a
	// connection reset.
	PeerReset = "peer.reset"
	// PeerPartition makes a peer unreachable before the call is sent, as a
	// network partition between the two nodes would.
	PeerPartition = "peer.partition"
)

// EnvVar names the environment variable EnableFromEnv reads a plan from.
const EnvVar = "REPRO_FAULTS"

// knownKeys enumerates every site and parameter this build probes;
// EnableFromEnv validates operator plans against it.
var knownKeys = map[string]bool{
	SolverBreakdown: true,
	SolverNonFinite: true,
	SolverHang:      true,
	SolverHangMS:    true,
	EnginePanic:     true,
	EngineNonFinite: true,
	PersistTorn:     true,
	PersistFsync:    true,
	HTTPErr5xx:      true,
	HTTPReset:       true,
	HTTPLatency:     true,
	HTTPLatencyMS:   true,
	PeerDown:        true,
	PeerLatency:     true,
	PeerLatencyMS:   true,
	PeerReset:       true,
	PeerPartition:   true,
}

// validateKnownSites rejects plans naming sites this build does not probe.
func validateKnownSites(p Plan) error {
	var unknown []string
	for k := range p.Rates {
		if !knownKeys[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	known := make([]string, 0, len(knownKeys))
	for k := range knownKeys {
		known = append(known, k)
	}
	sort.Strings(known)
	return fmt.Errorf("faultinject: unknown site(s) %s (this build probes: %s)",
		strings.Join(unknown, ", "), strings.Join(known, ", "))
}

// Plan is one fault schedule: a seed plus per-site firing rates and
// parameters.
type Plan struct {
	// Seed drives the deterministic per-site decision stream.
	Seed uint64
	// Rates maps site names to firing probabilities in [0,1]; keys ending
	// in "_ms" are parameters (milliseconds) read with Value instead.
	Rates map[string]float64
}

// String renders the plan in the REPRO_FAULTS syntax, deterministically
// ordered, so daemons can log exactly what they enabled.
func (p Plan) String() string {
	keys := make([]string, 0, len(p.Rates))
	for k := range p.Rates {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, k := range keys {
		fmt.Fprintf(&b, ",%s=%g", k, p.Rates[k])
	}
	return b.String()
}

// isParam reports whether key names a parameter rather than a firing rate.
func isParam(key string) bool { return strings.HasSuffix(key, "_ms") }

// ParsePlan parses the REPRO_FAULTS syntax: comma-separated key=value
// pairs, where "seed" sets the seed, "*_ms" keys are parameters, and every
// other key is a site rate validated into [0,1].
func ParsePlan(s string) (Plan, error) {
	p := Plan{Seed: 1, Rates: make(map[string]float64)}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return Plan{}, fmt.Errorf("faultinject: %q is not key=value", field)
		}
		if key == "seed" {
			seed, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faultinject: bad seed %q: %v", val, err)
			}
			p.Seed = seed
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return Plan{}, fmt.Errorf("faultinject: bad value for %q: %v", key, err)
		}
		if !isParam(key) && (f < 0 || f > 1) {
			return Plan{}, fmt.Errorf("faultinject: rate %s=%g outside [0,1]", key, f)
		}
		p.Rates[key] = f
	}
	return p, nil
}

// splitmix64 is the avalanche mixer behind the deterministic decision
// stream (same finalizer the SPN marking interner uses).
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// siteHash folds a site name into the decision stream (FNV-1a).
func siteHash(site string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

// decide reports whether probe number n of site (under seed) fires at
// rate: the hash maps (seed, site, n) onto a uniform [0,1) variate.
func decide(seed uint64, site string, n uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	u := splitmix64(seed ^ siteHash(site) ^ splitmix64(n))
	return float64(u>>11)/(1<<53) < rate
}
