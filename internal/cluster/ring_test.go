package cluster

import (
	"fmt"
	"testing"
)

func testMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{ID: fmt.Sprintf("node-%c", 'a'+i), URL: fmt.Sprintf("http://10.0.0.%d:8080", i+1)}
	}
	return ms
}

// Every node must compute the identical ring from the same member list,
// however its -peers flag happened to order it.
func TestRingOrderInsensitive(t *testing.T) {
	ms := testMembers(3)
	r1, err := NewRing([]Member{ms[0], ms[1], ms[2]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]Member{ms[2], ms[0], ms[1]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		a := r1.ReplicasFor(key, 2)
		b := r2.ReplicasFor(key, 2)
		if len(a) != len(b) {
			t.Fatalf("key %q: replica counts differ: %d vs %d", key, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("key %q replica %d: %+v vs %+v", key, j, a[j], b[j])
			}
		}
	}
}

func TestRingReplicaSetProperties(t *testing.T) {
	r, err := NewRing(testMembers(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		// Replicas are distinct members, clamped to membership size.
		for _, n := range []int{1, 3, 5, 9} {
			reps := r.ReplicasFor(key, n)
			want := n
			if want > 5 {
				want = 5
			}
			if len(reps) != want {
				t.Fatalf("ReplicasFor(%q, %d) returned %d members, want %d", key, n, len(reps), want)
			}
			seen := map[string]bool{}
			for _, m := range reps {
				if seen[m.ID] {
					t.Fatalf("ReplicasFor(%q, %d) repeated member %s", key, n, m.ID)
				}
				seen[m.ID] = true
			}
		}
		// A smaller replica set is a prefix of a larger one (successor walk).
		r2 := r.ReplicasFor(key, 2)
		r4 := r.ReplicasFor(key, 4)
		for j := range r2 {
			if r2[j] != r4[j] {
				t.Fatalf("ReplicasFor(%q) not prefix-consistent at %d", key, j)
			}
		}
		// HasReplica agrees with membership of the set.
		for _, m := range r.Members() {
			in := false
			for _, rep := range r.ReplicasFor(key, 2) {
				if rep.ID == m.ID {
					in = true
				}
			}
			if got := r.HasReplica(key, m.ID, 2); got != in {
				t.Fatalf("HasReplica(%q, %s, 2) = %v, want %v", key, m.ID, got, in)
			}
		}
	}
}

// Virtual nodes must spread ownership within sane bounds: on a 3-member
// ring no member may own a wildly disproportionate share of keys.
func TestRingBalance(t *testing.T) {
	r, err := NewRing(testMembers(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		owner := r.ReplicasFor(fmt.Sprintf("fingerprint:%d", i), 1)[0]
		counts[owner.ID]++
	}
	for id, c := range counts {
		share := float64(c) / keys
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.1f%% of the keyspace (counts %v)", id, 100*share, counts)
		}
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewRing([]Member{{ID: "", URL: "http://x"}}, 0); err == nil {
		t.Error("empty member ID accepted")
	}
	if _, err := NewRing([]Member{{ID: "a", URL: "http://x"}, {ID: "a", URL: "http://y"}}, 0); err == nil {
		t.Error("duplicate member ID accepted")
	}
}

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers(" node-b=http://10.0.0.2:8080 , node-a=10.0.0.1:8080/ ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("parsed %d members, want 2", len(ms))
	}
	byID := map[string]string{}
	for _, m := range ms {
		byID[m.ID] = m.URL
	}
	if byID["node-a"] != "http://10.0.0.1:8080" {
		t.Errorf("node-a URL = %q (scheme defaulting/trailing-slash trim)", byID["node-a"])
	}
	if byID["node-b"] != "http://10.0.0.2:8080" {
		t.Errorf("node-b URL = %q", byID["node-b"])
	}
	for _, bad := range []string{"", "justanid", "=http://x", "a="} {
		if _, err := ParseMembers(bad); err == nil {
			t.Errorf("ParseMembers(%q) accepted", bad)
		}
	}
}
