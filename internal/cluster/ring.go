// Package cluster is the peer-aware evaluation tier: a static
// consistent-hash ring over the engine's canonical Config fingerprints,
// R-way replication of cache entries to ring successors, heartbeat-based
// failure detection, and a failover router that keeps answering — from the
// owner, from any live replica, or by a local degraded solve — while nodes
// die, lag, or partition. The HTTP service fronts a Node's Route method on
// /v1/batch and /v1/frontier and exposes the peer RPC surface
// (/v1/peer/solve, /v1/peer/fill, /v1/peer/entries, /v1/peer/ping) the
// Nodes speak to each other; cmd/server composes the two from -peers,
// -node-id, and -replication flags.
//
// The topology is static configuration: every node is constructed from the
// same member list, so every node computes the same ring and the same
// replica set for every key. Only liveness is dynamic — a member is alive,
// suspect, or dead according to its heartbeat history, and routing skips
// members currently believed dead. Correctness never depends on membership
// agreement: any reachable replica serves a key from its validated cache
// or solves it fresh, and when no replica is reachable the routing node
// solves locally, so a wrong liveness belief costs latency, never answers.
package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Member is one statically configured cluster node.
type Member struct {
	// ID is the node's unique ring identity (stable across restarts).
	ID string `json:"id"`
	// URL is the base URL peers reach the node's HTTP service at.
	URL string `json:"url"`
}

// ParseMembers parses the -peers flag syntax: comma-separated id=url
// pairs naming every cluster member, this node included, e.g.
//
//	node-a=http://10.0.0.1:8080,node-b=http://10.0.0.2:8080
//
// Every node must be given the same list (order-insensitive) so all nodes
// compute the same ring.
func ParseMembers(s string) ([]Member, error) {
	var out []Member
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		id, u, ok := strings.Cut(field, "=")
		id, u = strings.TrimSpace(id), strings.TrimSpace(u)
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("cluster: peer %q is not id=url", field)
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			u = "http://" + u
		}
		out = append(out, Member{ID: id, URL: strings.TrimRight(u, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return out, nil
}

// defaultVirtualNodes is how many ring points each member projects;
// enough that three-member rings split the keyspace within a few percent
// of evenly.
const defaultVirtualNodes = 64

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// member.
type ringPoint struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is the consistent-hash ring over a static member list. It is
// immutable after construction, so lookups are lock-free and every node
// that was built from the same member list computes identical replica
// sets.
type Ring struct {
	members []Member
	points  []ringPoint
}

// NewRing builds the ring for members (order-insensitive: members are
// sorted by ID first, so every node builds the identical ring regardless
// of how its flag spelled the list). IDs must be unique and non-empty.
func NewRing(members []Member, virtualNodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if virtualNodes <= 0 {
		virtualNodes = defaultVirtualNodes
	}
	sorted := append([]Member(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	seen := make(map[string]bool, len(sorted))
	for _, m := range sorted {
		if m.ID == "" {
			return nil, fmt.Errorf("cluster: member with empty ID")
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", m.ID)
		}
		seen[m.ID] = true
	}
	r := &Ring{
		members: sorted,
		points:  make([]ringPoint, 0, len(sorted)*virtualNodes),
	}
	for mi, m := range sorted {
		base := fnv64(m.ID)
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   splitmix64(base ^ splitmix64(uint64(v))),
				member: mi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Astronomically unlikely 64-bit collision: break the tie by
		// member index so every node still agrees on the walk order.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the ring's member list in canonical (ID-sorted) order.
func (r *Ring) Members() []Member { return r.members }

// KeyHash maps a cache key (an engine fingerprint) onto the ring.
func KeyHash(key string) uint64 { return splitmix64(fnv64(key)) }

// ReplicasFor returns the ordered replica set for key: the owner (the
// first virtual node clockwise of the key's hash) followed by the next
// distinct members walking the ring, n members total (clamped to the
// membership size). The slice is freshly allocated.
func (r *Ring) ReplicasFor(key string, n int) []Member {
	if n <= 0 {
		n = 1
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := KeyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0 // wrap
	}
	out := make([]Member, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.member] {
			continue
		}
		taken[p.member] = true
		out = append(out, r.members[p.member])
	}
	return out
}

// HasReplica reports whether id is in key's n-member replica set.
func (r *Ring) HasReplica(key, id string, n int) bool {
	for _, m := range r.ReplicasFor(key, n) {
		if m.ID == id {
			return true
		}
	}
	return false
}

// splitmix64 is the avalanche finalizer shared with the marking interner
// and the fault seam.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv64 is FNV-1a over s.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
