// Peer RPC client and wire types. The HTTP handlers for these paths live
// in internal/service (which imports this package for the types); the
// client here is what Node's router, replicator, heartbeats, and re-sync
// speak. Every call passes through the peer fault-injection seam
// (peer.down, peer.partition, peer.latency, peer.reset), so the chaos
// suite can make any peer unreachable, lagging, or flaky without touching
// a real network.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Peer RPC paths (registered by internal/service when a cluster is wired).
const (
	PeerSolvePath   = "/v1/peer/solve"
	PeerFillPath    = "/v1/peer/fill"
	PeerEntriesPath = "/v1/peer/entries"
	PeerPingPath    = "/v1/peer/ping"
)

// SolveRequest asks a peer to evaluate one configuration strictly locally
// (cache, in-flight join, or its own solver — never re-routed, so a
// routing loop is impossible by construction).
type SolveRequest struct {
	Config core.Config `json:"config"`
}

// SolveResponse is a peer solve's success body.
type SolveResponse struct {
	Result *core.Result `json:"result"`
}

// FillRequest replicates cache entries to a peer. From names the sending
// node (for logs and counters); entries are admitted through the engine's
// validated, skip-existing gate.
type FillRequest struct {
	From    string                 `json:"from"`
	Entries []engine.SnapshotEntry `json:"entries"`
}

// FillResponse reports how many entries the peer admitted (existing keys
// and non-finite entries are skipped).
type FillResponse struct {
	Admitted int `json:"admitted"`
}

// EntriesResponse carries a peer's export of the requester's ring arc —
// every cached entry whose replica set includes the requesting node.
type EntriesResponse struct {
	Entries []engine.SnapshotEntry `json:"entries"`
}

// PingResponse answers a heartbeat probe.
type PingResponse struct {
	Node string `json:"node"`
}

// ErrPeerUnavailable classifies a peer call failure as transient — the
// peer is down, partitioned, overloaded, or mid-crash — meaning the caller
// should fail over to the next replica. Errors NOT wrapping this (a 4xx
// model error from a solve) are properties of the request itself and
// repeat identically on every replica, so failover must not retry them.
var ErrPeerUnavailable = errors.New("cluster: peer unavailable")

// errorBody is the service's JSON error envelope, decoded best-effort.
type errorBody struct {
	Error string `json:"error"`
}

// PeerClient issues the peer RPCs. Methods are safe for concurrent use.
type PeerClient struct {
	http *http.Client
}

// NewPeerClient builds a peer client; nil selects http.DefaultClient.
func NewPeerClient(hc *http.Client) *PeerClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &PeerClient{http: hc}
}

// injectSendFault fires the pre-send fault sites: a downed or partitioned
// peer is unreachable before any bytes leave, and a lagging peer delays
// the call.
func injectSendFault() error {
	if faultinject.Fire(faultinject.PeerDown) {
		return fmt.Errorf("%w: injected peer.down", ErrPeerUnavailable)
	}
	if faultinject.Fire(faultinject.PeerPartition) {
		return fmt.Errorf("%w: injected peer.partition", ErrPeerUnavailable)
	}
	faultinject.SleepFor(faultinject.PeerLatency, faultinject.PeerLatencyMS, 20)
	return nil
}

// do runs one peer round trip: inject pre-send faults, send, classify the
// response, and decode a 200 into out. A post-receive peer.reset discards
// the response after the remote side already did (and cached) the work.
func (pc *PeerClient) do(ctx context.Context, method, base, path string, body, out any) error {
	if err := injectSendFault(); err != nil {
		return err
	}
	var rd io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("cluster: encoding %s request: %w", path, err)
		}
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// The coordinator's trace id rides every peer hop, so one id follows a
	// request coordinator -> owner -> replica through each node's logs.
	if tid := obs.TraceID(ctx); tid != "" {
		req.Header.Set(obs.TraceHeader, tid)
	}
	resp, err := pc.http.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPeerUnavailable, err)
	}
	defer resp.Body.Close()
	if faultinject.Fire(faultinject.PeerReset) {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%w: injected peer.reset (response dropped)", ErrPeerUnavailable)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("%w: undecodable %s response: %v", ErrPeerUnavailable, path, err)
		}
		return nil
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
		// The peer is alive but cannot serve this right now (draining,
		// overloaded, internal failure): transient, fail over.
		var e errorBody
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%w: %s HTTP %d: %s", ErrPeerUnavailable, path, resp.StatusCode, e.Error)
	default:
		// 4xx: the request itself is bad (model error, oversized body) —
		// permanent, identical on every replica.
		var e errorBody
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = fmt.Sprintf("HTTP %d", resp.StatusCode)
		}
		return fmt.Errorf("cluster: peer %s: %s", path, e.Error)
	}
}

// Solve asks the peer at base to evaluate cfg locally.
func (pc *PeerClient) Solve(ctx context.Context, base string, cfg core.Config) (*core.Result, error) {
	var resp SolveResponse
	if err := pc.do(ctx, http.MethodPost, base, PeerSolvePath, SolveRequest{Config: cfg}, &resp); err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, fmt.Errorf("%w: peer returned no result", ErrPeerUnavailable)
	}
	return resp.Result, nil
}

// Fill replicates entries into the peer's cache, returning how many it
// admitted.
func (pc *PeerClient) Fill(ctx context.Context, base, from string, entries []engine.SnapshotEntry) (int, error) {
	var resp FillResponse
	if err := pc.do(ctx, http.MethodPost, base, PeerFillPath, FillRequest{From: from, Entries: entries}, &resp); err != nil {
		return 0, err
	}
	return resp.Admitted, nil
}

// Entries fetches the peer's export of forNode's ring arc.
func (pc *PeerClient) Entries(ctx context.Context, base, forNode string) ([]engine.SnapshotEntry, error) {
	var resp EntriesResponse
	path := PeerEntriesPath + "?node=" + url.QueryEscape(forNode)
	if err := pc.do(ctx, http.MethodGet, base, path, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Ping probes the peer's liveness (heartbeat). A draining or dead peer
// reports ErrPeerUnavailable.
func (pc *PeerClient) Ping(ctx context.Context, base string) error {
	var resp PingResponse
	return pc.do(ctx, http.MethodGet, base, PeerPingPath, nil, &resp)
}

// pingTimeout bounds one heartbeat probe so a hung peer cannot stall the
// heartbeat loop past its own interval.
const pingTimeout = 2 * time.Second
