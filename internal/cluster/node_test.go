package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// fakePeer is a minimal in-process peer speaking the wire protocol, with
// switchable failure modes, so Node's router and failure detector can be
// unit-tested without a second full service stack.
type fakePeer struct {
	t   *testing.T
	eng *engine.Engine
	srv *httptest.Server

	down      atomic.Bool  // every endpoint answers 500
	permanent atomic.Bool  // peer/solve answers 422
	mu        sync.Mutex   // guards fills
	fills     []FillRequest

	solves atomic.Int64
	pings  atomic.Int64
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	p := &fakePeer{t: t, eng: engine.New(engine.Options{})}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PeerSolvePath, func(w http.ResponseWriter, r *http.Request) {
		if p.down.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		if p.permanent.Load() {
			http.Error(w, `{"error":"unevaluable configuration"}`, http.StatusUnprocessableEntity)
			return
		}
		p.solves.Add(1)
		var req SolveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := p.eng.EvalContext(r.Context(), req.Config)
		if err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusUnprocessableEntity)
			return
		}
		json.NewEncoder(w).Encode(SolveResponse{Result: res})
	})
	mux.HandleFunc("POST "+PeerFillPath, func(w http.ResponseWriter, r *http.Request) {
		if p.down.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		var req FillRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.mu.Lock()
		p.fills = append(p.fills, req)
		p.mu.Unlock()
		admitted := p.eng.RestoreEntries(req.Entries)
		json.NewEncoder(w).Encode(FillResponse{Admitted: admitted})
	})
	mux.HandleFunc("GET "+PeerEntriesPath, func(w http.ResponseWriter, r *http.Request) {
		if p.down.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(EntriesResponse{Entries: p.eng.SnapshotEntries()})
	})
	mux.HandleFunc("GET "+PeerPingPath, func(w http.ResponseWriter, r *http.Request) {
		if p.down.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		p.pings.Add(1)
		json.NewEncoder(w).Encode(PingResponse{Node: "peer"})
	})
	p.srv = httptest.NewServer(mux)
	t.Cleanup(p.srv.Close)
	return p
}

func (p *fakePeer) fillCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fills)
}

func clusterTestConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.N = 12
	return cfg
}

// newTestNode builds a 2-member node ("self" plus the fake peer) that is
// NOT started — tests drive replication and heartbeats explicitly.
func newTestNode(t *testing.T, peer *fakePeer, replication int) *Node {
	t.Helper()
	n, err := NewNode(Options{
		SelfID: "self",
		Members: []Member{
			{ID: "self", URL: "http://invalid.invalid"},
			{ID: "peer", URL: peer.srv.URL},
		},
		Replication: replication,
		Engine:      engine.New(engine.Options{}),
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// configOwnedBy scans TIDS values until it finds a config whose ring owner
// is the wanted member, so ownership-dependent tests are deterministic.
func configOwnedBy(t *testing.T, n *Node, owner string) core.Config {
	t.Helper()
	cfg := clusterTestConfig()
	for tids := 10.0; tids < 5000; tids++ {
		cfg.TIDS = tids
		key := engine.Fingerprint(cfg)
		if n.ring.ReplicasFor(key, 1)[0].ID == owner {
			return cfg
		}
	}
	t.Fatal("no config found owned by " + owner)
	return cfg
}

// A local solve on a replica member must replicate the entry to the other
// replicas, and the replicated bytes must round-trip into their caches.
func TestRouteReplicatesLocalSolves(t *testing.T) {
	peer := newFakePeer(t)
	n := newTestNode(t, peer, 2)
	n.Start()
	defer n.Stop()

	cfg := configOwnedBy(t, n, "self")
	res, err := n.Route(context.Background(), cfg, func(ctx context.Context) (*core.Result, error) {
		return n.eng.EvalContext(ctx, cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := n.FlushReplication(ctx); err != nil {
		t.Fatal(err)
	}
	if peer.fillCount() == 0 {
		t.Fatal("local solve was not replicated to the peer")
	}
	// The peer's cache must now hold the identical result.
	got, ok := peer.eng.Cached(cfg)
	if !ok {
		t.Fatal("replicated entry missing from peer cache")
	}
	wantJSON, _ := json.Marshal(res)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Errorf("replicated result differs:\n peer %s\n self %s", gotJSON, wantJSON)
	}
	if st := n.Status(); st.RoutedLocal != 1 || st.Replicated == 0 {
		t.Errorf("counters: %+v", st)
	}
}

// A point owned by the peer routes remotely; the answer is admitted into
// the local cache so a repeat is warm without another hop.
func TestRouteRemoteOwnerAndReadThrough(t *testing.T) {
	peer := newFakePeer(t)
	n := newTestNode(t, peer, 1)

	cfg := configOwnedBy(t, n, "peer")
	res, err := n.Route(context.Background(), cfg, func(ctx context.Context) (*core.Result, error) {
		t.Fatal("solveLocal called for a remotely-owned point")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peer.solves.Load() != 1 {
		t.Fatalf("peer solves = %d, want 1", peer.solves.Load())
	}
	if cached, ok := n.eng.Cached(cfg); !ok {
		t.Error("remote result not admitted into the local cache")
	} else if cached.MTTSF != res.MTTSF {
		t.Error("cached copy differs from the routed result")
	}
	if st := n.Status(); st.RoutedRemote != 1 {
		t.Errorf("RoutedRemote = %d, want 1", st.RoutedRemote)
	}
}

// When the remote owner fails transiently the request degrades to a local
// solve (replication=1: no other replica to hedge to) and the peer's
// failure is recorded.
func TestRouteDegradesWhenOwnerDown(t *testing.T) {
	peer := newFakePeer(t)
	n := newTestNode(t, peer, 1)
	peer.down.Store(true)

	cfg := configOwnedBy(t, n, "peer")
	solved := false
	_, err := n.Route(context.Background(), cfg, func(ctx context.Context) (*core.Result, error) {
		solved = true
		return n.eng.EvalContext(ctx, cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !solved {
		t.Fatal("router did not degrade to the local solve")
	}
	st := n.Status()
	if st.DegradedSolves != 1 {
		t.Errorf("DegradedSolves = %d, want 1", st.DegradedSolves)
	}
	if st.Peers[0].ConsecutiveFails == 0 {
		t.Error("owner failure not recorded against its liveness")
	}
}

// A permanent (4xx) remote failure must NOT fail over: the configuration
// itself is bad and every replica would answer identically.
func TestRoutePermanentErrorDoesNotHedge(t *testing.T) {
	peer := newFakePeer(t)
	n := newTestNode(t, peer, 1)
	peer.permanent.Store(true)

	cfg := configOwnedBy(t, n, "peer")
	_, err := n.Route(context.Background(), cfg, func(ctx context.Context) (*core.Result, error) {
		t.Fatal("permanent remote error must not degrade to a local solve")
		return nil, nil
	})
	if err == nil {
		t.Fatal("expected the peer's permanent error")
	}
	if st := n.Status(); st.DegradedSolves != 0 {
		t.Errorf("DegradedSolves = %d, want 0", st.DegradedSolves)
	}
}

// Dead peers are skipped outright: after enough consecutive failures the
// router stops paying a connection attempt per point.
func TestRouteSkipsDeadPeer(t *testing.T) {
	peer := newFakePeer(t)
	n := newTestNode(t, peer, 1)
	peer.down.Store(true)

	cfg := configOwnedBy(t, n, "peer")
	solve := func(ctx context.Context) (*core.Result, error) { return n.eng.EvalContext(ctx, cfg) }
	for i := 0; i < n.deadAfter; i++ {
		n.recordFailure("peer")
	}
	if n.peerStateOf("peer") != PeerDead {
		t.Fatalf("peer state = %s, want dead", n.peerStateOf("peer"))
	}
	if _, err := n.Route(context.Background(), cfg, solve); err != nil {
		t.Fatal(err)
	}
	if peer.solves.Load() != 0 {
		t.Error("router contacted a dead peer")
	}
	if n.Healthy() {
		t.Error("Healthy() with a dead peer")
	}
}

// AdmitFill must refuse non-finite entries — a poisoned peer cannot seed
// a healthy cache — while admitting valid ones.
func TestAdmitFillValidates(t *testing.T) {
	peer := newFakePeer(t)
	n := newTestNode(t, peer, 2)

	cfg := clusterTestConfig()
	res, err := peer.eng.Eval(cfg)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := *res
	poisoned.MTTSF = math.NaN()
	admitted := n.AdmitFill("peer", []engine.SnapshotEntry{
		{Key: "poisoned-key", Result: poisoned},
		{Key: engine.Fingerprint(cfg), Result: *res},
	})
	if admitted != 1 {
		t.Fatalf("admitted %d entries, want 1 (the finite one)", admitted)
	}
	if _, ok := n.eng.Cached(cfg); !ok {
		t.Error("finite entry not admitted")
	}
	if got := n.eng.SnapshotEntriesMatching(func(k string) bool { return k == "poisoned-key" }); len(got) != 0 {
		t.Error("non-finite entry entered the cache")
	}
}

// The heartbeat ladder: alive → suspect → dead as a peer stops answering,
// then a successful probe flips it straight back and pushes its arc.
func TestHeartbeatLadderAndRejoinPush(t *testing.T) {
	peer := newFakePeer(t)
	n, err := NewNode(Options{
		SelfID: "self",
		Members: []Member{
			{ID: "self", URL: "http://invalid.invalid"},
			{ID: "peer", URL: peer.srv.URL},
		},
		Replication:       2,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      2,
		DeadAfter:         4,
		Engine:            engine.New(engine.Options{}),
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the local cache so the rejoin push has an arc to send.
	cfg := clusterTestConfig()
	if _, err := n.eng.Eval(cfg); err != nil {
		t.Fatal(err)
	}

	n.Start()
	defer n.Stop()
	peer.down.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for n.peerStateOf("peer") != PeerDead {
		if time.Now().After(deadline) {
			t.Fatal("peer never declared dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n.Healthy() {
		t.Error("Healthy() while a peer is dead")
	}

	peer.down.Store(false)
	for n.peerStateOf("peer") != PeerAlive {
		if time.Now().After(deadline) {
			t.Fatal("peer never rejoined")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The dead→alive transition pushes the rejoined peer's arc.
	for peer.fillCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rejoin did not push the peer's arc")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := peer.eng.Cached(cfg); !ok {
		t.Error("pushed arc entry missing from the rejoined peer's cache")
	}
	if !n.Healthy() {
		t.Error("Healthy() false after rejoin")
	}
}

// Resync pulls this node's arc from live peers (the restart path).
func TestResyncPullsArcFromPeers(t *testing.T) {
	peer := newFakePeer(t)
	n := newTestNode(t, peer, 2)

	cfg := clusterTestConfig()
	want, err := peer.eng.Eval(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Resync(context.Background())
	got, ok := n.eng.Cached(cfg)
	if !ok {
		t.Fatal("re-sync did not admit the peer's entry")
	}
	if got.MTTSF != want.MTTSF {
		t.Error("re-synced entry differs from the peer's")
	}
	if st := n.Status(); st.Resyncs == 0 || st.ResyncEntries == 0 {
		t.Errorf("re-sync counters not advanced: %+v", st)
	}
}
