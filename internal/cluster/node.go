package cluster

// Node is one member's view of the cluster: the shared ring, a liveness
// belief about every peer, a bounded asynchronous replicator, and the
// failover router the HTTP service sends every point evaluation through.
//
// The router's contract is availability without wrong answers. For a key
// whose replica set is [r0, r1, ...] it tries, in order: itself (a local
// solve, whose result is then replicated to the other replicas), then each
// peer not currently believed dead (which serves from its validated cache
// or solves locally — peer solves are never re-routed, so no forwarding
// loop can exist). A transient peer failure (down, partitioned, resetting,
// overloaded) records against that peer's liveness and the request hedges
// to the next replica; a permanent failure (the configuration itself is
// unevaluable) returns immediately, because every replica would fail it
// identically. When every replica is unreachable the node solves locally —
// the degraded mode — so the sweep completes no matter how many peers are
// lost. Remote results are admitted into the local cache through the same
// validated gate as snapshot restore, so a poisoned peer cannot seed a
// healthy cache.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// PeerState is a node's current belief about one peer's liveness.
type PeerState string

const (
	// PeerAlive: recent heartbeats or requests succeeded.
	PeerAlive PeerState = "alive"
	// PeerSuspect: a few consecutive probes failed; still routed to.
	PeerSuspect PeerState = "suspect"
	// PeerDead: enough consecutive failures that routing skips the peer
	// until a heartbeat succeeds again.
	PeerDead PeerState = "dead"
)

// Options configures a Node.
type Options struct {
	// SelfID names this node; it must appear in Members.
	SelfID string
	// Members is the full static topology, this node included. Every node
	// must be configured with the same set (order-insensitive).
	Members []Member
	// Replication is R, the size of each key's replica set (owner
	// included), clamped to the membership size. Default 2.
	Replication int
	// VirtualNodes is the ring points per member (default 64).
	VirtualNodes int
	// HeartbeatInterval is the liveness probe period (default 500ms).
	HeartbeatInterval time.Duration
	// SuspectAfter and DeadAfter are the consecutive-failure thresholds
	// for the alive → suspect → dead ladder (defaults 2 and 4).
	SuspectAfter int
	DeadAfter    int
	// Engine is the local cache/solver the node replicates into and
	// exports arcs from; required.
	Engine *engine.Engine
	// HTTPClient carries the peer RPCs (nil = http.DefaultClient).
	HTTPClient *http.Client
	// Logf, when set, receives operational log lines (peer transitions,
	// re-syncs). Nil silences them.
	Logf func(format string, args ...any)
}

// replicationQueueBound caps the pending replication backlog; beyond it,
// new fills are dropped (and counted) rather than stalling solves.
const replicationQueueBound = 4096

// peerHealth is the per-peer failure-detector state.
type peerHealth struct {
	member Member
	fails  int // consecutive failed probes/requests; 0 = alive
}

// repItem is one queued cache-fill: a freshly solved entry and the
// replicas it belongs on.
type repItem struct {
	entry   engine.SnapshotEntry
	targets []Member
}

// Node is this process's membership in the evaluation cluster. Construct
// with NewNode, then Start; Route is safe for concurrent use.
type Node struct {
	self        Member
	ring        *Ring
	replication int
	eng         *engine.Engine
	pc          *PeerClient
	logf        func(string, ...any)

	hbInterval   time.Duration
	suspectAfter int
	deadAfter    int

	mu    sync.Mutex
	peers map[string]*peerHealth // every member except self

	repQ       chan repItem
	repPending atomic.Int64
	stop       chan struct{}
	wg         sync.WaitGroup
	started    atomic.Bool

	routedLocal, routedRemote, hedges, degradedSolves atomic.Uint64
	replicated, replicationDropped                    atomic.Uint64
	fillsAdmitted                                     atomic.Uint64
	resyncs, resyncEntries                            atomic.Uint64
}

// NewNode validates the topology and builds the node (not yet started:
// heartbeats and the replicator run only between Start and Stop, so a
// node used synchronously in tests needs neither).
func NewNode(opts Options) (*Node, error) {
	if opts.Engine == nil {
		return nil, fmt.Errorf("cluster: Options.Engine is required")
	}
	ring, err := NewRing(opts.Members, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	var self *Member
	for i := range ring.Members() {
		if ring.Members()[i].ID == opts.SelfID {
			self = &ring.Members()[i]
		}
	}
	if self == nil {
		return nil, fmt.Errorf("cluster: self ID %q not in member list", opts.SelfID)
	}
	if opts.Replication <= 0 {
		opts.Replication = 2
	}
	if opts.Replication > len(ring.Members()) {
		opts.Replication = len(ring.Members())
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 500 * time.Millisecond
	}
	if opts.SuspectAfter <= 0 {
		opts.SuspectAfter = 2
	}
	if opts.DeadAfter <= opts.SuspectAfter {
		opts.DeadAfter = opts.SuspectAfter + 2
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	n := &Node{
		self:         *self,
		ring:         ring,
		replication:  opts.Replication,
		eng:          opts.Engine,
		pc:           NewPeerClient(opts.HTTPClient),
		logf:         logf,
		hbInterval:   opts.HeartbeatInterval,
		suspectAfter: opts.SuspectAfter,
		deadAfter:    opts.DeadAfter,
		peers:        make(map[string]*peerHealth, len(ring.Members())-1),
		repQ:         make(chan repItem, replicationQueueBound),
		stop:         make(chan struct{}),
	}
	for _, m := range ring.Members() {
		if m.ID != n.self.ID {
			n.peers[m.ID] = &peerHealth{member: m}
		}
	}
	return n, nil
}

// SelfID returns this node's ring identity.
func (n *Node) SelfID() string { return n.self.ID }

// Members returns the static topology in canonical (ID-sorted) order.
func (n *Node) Members() []Member { return n.ring.Members() }

// Replication returns the effective R.
func (n *Node) Replication() int { return n.replication }

// HasReplica reports whether id is in key's replica set under this node's
// ring and replication factor.
func (n *Node) HasReplica(key, id string) bool {
	return n.ring.HasReplica(key, id, n.replication)
}

// Start launches the heartbeat loop and the replication worker, and kicks
// off an initial arc re-sync in the background (a freshly restarted node
// pulls its share of the keyspace back from its successors without
// blocking boot — until entries arrive it simply solves its arc cold).
func (n *Node) Start() {
	if !n.started.CompareAndSwap(false, true) {
		return
	}
	n.wg.Add(2)
	go n.heartbeatLoop()
	go n.replicationWorker()
	if len(n.peers) > 0 {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			n.Resync(ctx)
		}()
	}
}

// Stop halts the background loops and waits for them. Queued replication
// items not yet sent are dropped (peers re-converge via re-sync).
func (n *Node) Stop() {
	if !n.started.CompareAndSwap(true, false) {
		return
	}
	close(n.stop)
	n.wg.Wait()
}

// state derives the ladder position from a consecutive-failure count.
func (n *Node) state(fails int) PeerState {
	switch {
	case fails >= n.deadAfter:
		return PeerDead
	case fails >= n.suspectAfter:
		return PeerSuspect
	default:
		return PeerAlive
	}
}

// recordSuccess resets a peer's failure count; a dead → alive transition
// (the peer rejoined) pushes the rejoiner's ring arc back to it, which is
// the other half of re-sync: a restarted peer pulls from successors, and
// successors that notice the rejoin push, so convergence does not depend
// on which side noticed first.
func (n *Node) recordSuccess(id string) {
	n.mu.Lock()
	ph, ok := n.peers[id]
	if !ok {
		n.mu.Unlock()
		return
	}
	wasDead := n.state(ph.fails) == PeerDead
	ph.fails = 0
	n.mu.Unlock()
	if wasDead && n.started.Load() {
		n.logf("cluster: peer %s rejoined; pushing its arc", id)
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			n.pushArcTo(ctx, ph.member)
		}()
	}
}

// recordFailure advances a peer one rung down the liveness ladder.
func (n *Node) recordFailure(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ph, ok := n.peers[id]
	if !ok {
		return
	}
	before := n.state(ph.fails)
	ph.fails++
	if after := n.state(ph.fails); after != before {
		n.logf("cluster: peer %s %s -> %s (%d consecutive failures)", id, before, after, ph.fails)
	}
}

// peerStateOf returns the current belief about id (self is always alive).
func (n *Node) peerStateOf(id string) PeerState {
	if id == n.self.ID {
		return PeerAlive
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ph, ok := n.peers[id]
	if !ok {
		return PeerDead
	}
	return n.state(ph.fails)
}

// Healthy reports whether every peer is currently believed alive; the
// service maps false onto /healthz "degraded".
func (n *Node) Healthy() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ph := range n.peers {
		if n.state(ph.fails) != PeerAlive {
			return false
		}
	}
	return true
}

// heartbeatLoop probes every peer each interval. Probes run in parallel
// (a hung peer must not delay detection of the others) and each is bounded
// by pingTimeout.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.hbInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		targets := make([]Member, 0, len(n.peers))
		for _, ph := range n.peers {
			targets = append(targets, ph.member)
		}
		n.mu.Unlock()
		var probes sync.WaitGroup
		for _, m := range targets {
			probes.Add(1)
			go func(m Member) {
				defer probes.Done()
				ctx, cancel := context.WithTimeout(context.Background(), pingTimeout)
				defer cancel()
				if err := n.pc.Ping(ctx, m.URL); err != nil {
					n.recordFailure(m.ID)
				} else {
					n.recordSuccess(m.ID)
				}
			}(m)
		}
		probes.Wait()
	}
}

// Route evaluates cfg through the cluster: local solve when this node is
// a replica (first in line), otherwise failover across the live replicas,
// finally a degraded local solve. solveLocal is the service's own
// evaluation path (cache probe, in-flight join, solve-semaphore, solver) —
// Route never holds any local solve capacity while waiting on a remote
// peer, so two nodes cross-routing cannot deadlock even at WorkerBound 1.
func (n *Node) Route(ctx context.Context, cfg core.Config, solveLocal func(context.Context) (*core.Result, error)) (*core.Result, error) {
	key := engine.Fingerprint(cfg)
	replicas := n.ring.ReplicasFor(key, n.replication)
	attempts := 0
	var lastErr error
	for _, m := range replicas {
		if m.ID == n.self.ID {
			attempts++
			if attempts > 1 {
				n.hedges.Add(1)
			}
			res, err := solveLocal(ctx)
			if err == nil {
				n.routedLocal.Add(1)
				n.replicate(key, *res, replicas, "")
			}
			return res, err
		}
		if n.peerStateOf(m.ID) == PeerDead {
			continue
		}
		attempts++
		if attempts > 1 {
			n.hedges.Add(1)
		}
		res, err := n.pc.Solve(ctx, m.URL, cfg)
		if err == nil {
			n.recordSuccess(m.ID)
			n.routedRemote.Add(1)
			// Read-through: keep a validated local copy so repeats are warm
			// here too (and survive this peer dying later).
			n.eng.AdmitReplica(key, *res)
			// The serving peer only cached locally (peer solves are strictly
			// local); the coordinator completes the R-way fill to the other
			// replicas.
			n.replicate(key, *res, replicas, m.ID)
			return res, nil
		}
		if ctx.Err() != nil {
			// The client hung up or timed out; not evidence against the peer.
			return nil, ctx.Err()
		}
		if !errors.Is(err, ErrPeerUnavailable) {
			// Permanent: the configuration itself failed; every replica
			// would answer identically.
			return nil, err
		}
		n.recordFailure(m.ID)
		lastErr = err
	}
	// Every replica was dead or failed transiently: solve here, degraded.
	n.degradedSolves.Add(1)
	if lastErr != nil {
		n.logf("cluster: all replicas unavailable for %s (last: %v); degrading to local solve", key, lastErr)
	}
	res, err := solveLocal(ctx)
	if err == nil {
		// Still replicate toward the true owners so the keyspace converges
		// once they heal.
		n.replicate(key, *res, replicas, "")
	}
	return res, err
}

// replicate enqueues a freshly solved entry for asynchronous fill to the
// other members of its replica set (minus `except`, a peer that already
// holds it). Never blocks a solve: a full queue drops the fill (counted),
// and re-sync repairs the gap later.
func (n *Node) replicate(key string, res core.Result, replicas []Member, except string) {
	targets := make([]Member, 0, len(replicas))
	for _, m := range replicas {
		if m.ID != n.self.ID && m.ID != except {
			targets = append(targets, m)
		}
	}
	if len(targets) == 0 {
		return
	}
	item := repItem{entry: engine.SnapshotEntry{Key: key, Result: res}, targets: targets}
	n.repPending.Add(1)
	select {
	case n.repQ <- item:
	default:
		n.repPending.Add(-1)
		n.replicationDropped.Add(1)
	}
}

// replicationWorker drains the fill queue. One worker keeps fills strictly
// ordered per node and bounds the peer-RPC concurrency replication adds.
func (n *Node) replicationWorker() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case item := <-n.repQ:
			n.sendFill(item)
			n.repPending.Add(-1)
		}
	}
}

// sendFill delivers one replication item to each live target.
func (n *Node) sendFill(item repItem) {
	for _, m := range item.targets {
		if n.peerStateOf(m.ID) == PeerDead {
			continue // re-sync covers it on rejoin
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := n.pc.Fill(ctx, m.URL, n.self.ID, []engine.SnapshotEntry{item.entry})
		cancel()
		if err != nil {
			n.recordFailure(m.ID)
		} else {
			n.recordSuccess(m.ID)
			n.replicated.Add(1)
		}
	}
}

// FlushReplication blocks until every queued fill has been attempted (or
// ctx expires). Tests use it to make replication deterministic.
func (n *Node) FlushReplication(ctx context.Context) error {
	for n.repPending.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// AdmitFill admits replicated entries from peer `from` through the
// engine's validated skip-existing gate, returning how many entered the
// cache. A fill is also liveness evidence for the sender.
func (n *Node) AdmitFill(from string, entries []engine.SnapshotEntry) int {
	admitted := n.eng.RestoreEntries(entries)
	n.fillsAdmitted.Add(uint64(admitted))
	if from != "" {
		n.recordSuccess(from)
	}
	return admitted
}

// EntriesFor exports every locally cached entry belonging to peerID's
// replica set — the arc a rejoining peer pulls to re-warm.
func (n *Node) EntriesFor(peerID string) []engine.SnapshotEntry {
	return n.eng.SnapshotEntriesMatching(func(key string) bool {
		return n.ring.HasReplica(key, peerID, n.replication)
	})
}

// Resync pulls this node's own arc from every live peer and admits the
// entries locally; the rejoin path after a crash or partition heals.
func (n *Node) Resync(ctx context.Context) {
	n.mu.Lock()
	targets := make([]Member, 0, len(n.peers))
	for _, ph := range n.peers {
		targets = append(targets, ph.member)
	}
	n.mu.Unlock()
	total := 0
	for _, m := range targets {
		if n.peerStateOf(m.ID) == PeerDead {
			continue
		}
		entries, err := n.pc.Entries(ctx, m.URL, n.self.ID)
		if err != nil {
			n.recordFailure(m.ID)
			continue
		}
		n.recordSuccess(m.ID)
		total += n.eng.RestoreEntries(entries)
	}
	n.resyncs.Add(1)
	n.resyncEntries.Add(uint64(total))
	n.logf("cluster: re-sync admitted %d entries from %d peers", total, len(targets))
}

// pushArcTo sends a rejoined peer every locally cached entry in its arc
// (push-side re-sync, triggered by observing the dead → alive transition).
func (n *Node) pushArcTo(ctx context.Context, m Member) {
	entries := n.EntriesFor(m.ID)
	if len(entries) == 0 {
		return
	}
	if _, err := n.pc.Fill(ctx, m.URL, n.self.ID, entries); err != nil {
		n.recordFailure(m.ID)
		return
	}
	n.resyncs.Add(1)
	n.resyncEntries.Add(uint64(len(entries)))
	n.logf("cluster: pushed %d arc entries to rejoined peer %s", len(entries), m.ID)
}

// PeerStatus is one peer's liveness as reported on /v1/stats.
type PeerStatus struct {
	ID               string    `json:"id"`
	URL              string    `json:"url"`
	State            PeerState `json:"state"`
	ConsecutiveFails int       `json:"consecutive_fails"`
}

// Status is the cluster block of /v1/stats.
type Status struct {
	Self        string       `json:"self"`
	Replication int          `json:"replication"`
	Peers       []PeerStatus `json:"peers"`

	RoutedLocal        uint64 `json:"routed_local"`
	RoutedRemote       uint64 `json:"routed_remote"`
	Hedges             uint64 `json:"hedges"`
	DegradedSolves     uint64 `json:"degraded_solves"`
	Replicated         uint64 `json:"replicated"`
	ReplicationDropped uint64 `json:"replication_dropped"`
	FillsAdmitted      uint64 `json:"fills_admitted"`
	Resyncs            uint64 `json:"resyncs"`
	ResyncEntries      uint64 `json:"resync_entries"`
}

// Status snapshots the node's routing counters and peer beliefs.
func (n *Node) Status() Status {
	st := Status{
		Self:               n.self.ID,
		Replication:        n.replication,
		RoutedLocal:        n.routedLocal.Load(),
		RoutedRemote:       n.routedRemote.Load(),
		Hedges:             n.hedges.Load(),
		DegradedSolves:     n.degradedSolves.Load(),
		Replicated:         n.replicated.Load(),
		ReplicationDropped: n.replicationDropped.Load(),
		FillsAdmitted:      n.fillsAdmitted.Load(),
		Resyncs:            n.resyncs.Load(),
		ResyncEntries:      n.resyncEntries.Load(),
	}
	n.mu.Lock()
	for _, ph := range n.peers {
		st.Peers = append(st.Peers, PeerStatus{
			ID:               ph.member.ID,
			URL:              ph.member.URL,
			State:            n.state(ph.fails),
			ConsecutiveFails: ph.fails,
		})
	}
	n.mu.Unlock()
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].ID < st.Peers[j].ID })
	return st
}
