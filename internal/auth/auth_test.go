package auth

import (
	"crypto/ed25519"
	"testing"
	"time"
)

var testExpiry = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
var testNow = time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)

func newAuthority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority(nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestChallengeResponseHappyPath(t *testing.T) {
	a := newAuthority(t)
	id, err := a.Enroll(42, testExpiry, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChallenge(nil)
	if err != nil {
		t.Fatal(err)
	}
	resp := id.Respond(c)
	got, err := VerifyResponse(a.PublicKey(), c, resp, testNow)
	if err != nil {
		t.Fatalf("valid response rejected: %v", err)
	}
	if got != 42 {
		t.Errorf("authenticated ID = %d, want 42", got)
	}
}

func TestCertificateFromOtherAuthorityRejected(t *testing.T) {
	a1 := newAuthority(t)
	a2 := newAuthority(t)
	id, err := a2.Enroll(7, testExpiry, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewChallenge(nil)
	resp := id.Respond(c)
	if _, err := VerifyResponse(a1.PublicKey(), c, resp, testNow); err != ErrBadCertificate {
		t.Fatalf("foreign certificate accepted (err=%v)", err)
	}
}

func TestExpiredCertificateRejected(t *testing.T) {
	a := newAuthority(t)
	id, err := a.Enroll(7, testNow.Add(-time.Hour), nil)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewChallenge(nil)
	resp := id.Respond(c)
	if _, err := VerifyResponse(a.PublicKey(), c, resp, testNow); err != ErrExpiredCertificate {
		t.Fatalf("expired certificate accepted (err=%v)", err)
	}
}

func TestReplayedResponseRejected(t *testing.T) {
	// A response captured for one challenge must not satisfy another:
	// the freshness property of challenge/response.
	a := newAuthority(t)
	id, err := a.Enroll(7, testExpiry, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := NewChallenge(nil)
	resp := id.Respond(c1)
	c2, _ := NewChallenge(nil)
	if _, err := VerifyResponse(a.PublicKey(), c2, resp, testNow); err != ErrChallengeMismatch {
		t.Fatalf("replayed response accepted (err=%v)", err)
	}
}

func TestForgedNonceRejected(t *testing.T) {
	// An attacker rewriting the echoed nonce to match the verifier's
	// challenge still fails: the signature covers the original nonce.
	a := newAuthority(t)
	id, err := a.Enroll(7, testExpiry, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := NewChallenge(nil)
	resp := id.Respond(c1)
	c2, _ := NewChallenge(nil)
	resp.Nonce = c2.Nonce // forge the echo
	if _, err := VerifyResponse(a.PublicKey(), c2, resp, testNow); err != ErrBadResponse {
		t.Fatalf("forged-nonce response accepted (err=%v)", err)
	}
}

func TestStolenCertificateWithoutKeyRejected(t *testing.T) {
	// An outsider presenting a legitimate member's certificate but
	// signing with its own key must fail.
	a := newAuthority(t)
	victim, err := a.Enroll(7, testExpiry, nil)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := a.Enroll(8, testExpiry, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewChallenge(nil)
	resp := attacker.Respond(c)
	resp.Cert = victim.Cert // claim to be the victim
	if _, err := VerifyResponse(a.PublicKey(), c, resp, testNow); err != ErrBadResponse {
		t.Fatalf("certificate theft accepted (err=%v)", err)
	}
}

func TestTamperedCertificateIDRejected(t *testing.T) {
	a := newAuthority(t)
	id, err := a.Enroll(7, testExpiry, nil)
	if err != nil {
		t.Fatal(err)
	}
	id.Cert.MemberID = 99 // impersonation attempt
	c, _ := NewChallenge(nil)
	resp := id.Respond(c)
	if _, err := VerifyResponse(a.PublicKey(), c, resp, testNow); err != ErrBadCertificate {
		t.Fatalf("tampered certificate accepted (err=%v)", err)
	}
}

func TestChallengesAreFresh(t *testing.T) {
	c1, err := NewChallenge(nil)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewChallenge(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Nonce == c2.Nonce {
		t.Fatal("two challenges share a nonce")
	}
}

func TestVerifyCertificateDirect(t *testing.T) {
	a := newAuthority(t)
	id, err := a.Enroll(3, testExpiry, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCertificate(a.PublicKey(), id.Cert, testNow); err != nil {
		t.Errorf("valid certificate rejected: %v", err)
	}
	// Wrong authority key.
	other := make(ed25519.PublicKey, ed25519.PublicKeySize)
	if err := VerifyCertificate(other, id.Cert, testNow); err != ErrBadCertificate {
		t.Errorf("zero-key verification returned %v", err)
	}
}
