// Package auth implements the member authentication substrate the paper
// assumes for join admission: "each member has a private key and its
// certified public key available for authentication purposes. When a new
// member joins a mobile group, the new member's identity is authenticated
// based on the member public/private key pair by applying the
// challenge/response mechanism" (Section 3).
//
// The package provides Ed25519 member identities, an offline mission
// authority that certifies public keys before deployment (MANETs have no
// online CA), and the nonce-based challenge/response run by any current
// member admitting a joiner.
package auth

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Errors returned by verification.
var (
	// ErrBadCertificate marks a certificate that does not verify against
	// the authority.
	ErrBadCertificate = errors.New("auth: certificate signature invalid")
	// ErrExpiredCertificate marks a certificate past its validity.
	ErrExpiredCertificate = errors.New("auth: certificate expired")
	// ErrBadResponse marks a challenge response that does not verify.
	ErrBadResponse = errors.New("auth: challenge response invalid")
	// ErrChallengeMismatch marks a response to a different challenge.
	ErrChallengeMismatch = errors.New("auth: response does not match challenge")
)

// Authority is the offline mission authority that certifies member keys
// before the group deploys.
type Authority struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewAuthority generates a mission authority from the given entropy source
// (nil selects crypto/rand).
func NewAuthority(rng io.Reader) (*Authority, error) {
	if rng == nil {
		rng = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("auth: generating authority key: %w", err)
	}
	return &Authority{pub: pub, priv: priv}, nil
}

// PublicKey returns the authority's verification key, pre-distributed to
// every member.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.pub }

// Certificate binds a member ID to its public key under the authority's
// signature with a validity window.
type Certificate struct {
	MemberID  int
	PublicKey ed25519.PublicKey
	NotAfter  time.Time
	Signature []byte
}

// certBytes is the canonical byte encoding covered by the signature.
func certBytes(memberID int, pub ed25519.PublicKey, notAfter time.Time) []byte {
	buf := make([]byte, 0, 8+len(pub)+8)
	var idb [8]byte
	binary.BigEndian.PutUint64(idb[:], uint64(int64(memberID)))
	buf = append(buf, idb[:]...)
	buf = append(buf, pub...)
	var tb [8]byte
	binary.BigEndian.PutUint64(tb[:], uint64(notAfter.Unix()))
	return append(buf, tb[:]...)
}

// Identity is one member's credentials.
type Identity struct {
	ID   int
	Cert Certificate
	priv ed25519.PrivateKey
}

// Enroll creates a member identity certified by the authority.
func (a *Authority) Enroll(memberID int, notAfter time.Time, rng io.Reader) (*Identity, error) {
	if rng == nil {
		rng = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("auth: generating member key: %w", err)
	}
	cert := Certificate{
		MemberID:  memberID,
		PublicKey: pub,
		NotAfter:  notAfter,
		Signature: ed25519.Sign(a.priv, certBytes(memberID, pub, notAfter)),
	}
	return &Identity{ID: memberID, Cert: cert, priv: priv}, nil
}

// VerifyCertificate checks a certificate against the authority key at the
// given time.
func VerifyCertificate(authorityKey ed25519.PublicKey, cert Certificate, now time.Time) error {
	if !ed25519.Verify(authorityKey, certBytes(cert.MemberID, cert.PublicKey, cert.NotAfter), cert.Signature) {
		return ErrBadCertificate
	}
	if now.After(cert.NotAfter) {
		return ErrExpiredCertificate
	}
	return nil
}

// Challenge is a fresh nonce issued by the admitting member.
type Challenge struct {
	Nonce [32]byte
}

// NewChallenge draws a fresh challenge from the given entropy source (nil
// selects crypto/rand).
func NewChallenge(rng io.Reader) (Challenge, error) {
	if rng == nil {
		rng = rand.Reader
	}
	var c Challenge
	if _, err := io.ReadFull(rng, c.Nonce[:]); err != nil {
		return Challenge{}, fmt.Errorf("auth: drawing challenge: %w", err)
	}
	return c, nil
}

// Response is the joiner's signature over the challenge, presented with
// its certificate.
type Response struct {
	Cert      Certificate
	Nonce     [32]byte
	Signature []byte
}

// Respond answers a challenge with this identity.
func (id *Identity) Respond(c Challenge) Response {
	return Response{
		Cert:      id.Cert,
		Nonce:     c.Nonce,
		Signature: ed25519.Sign(id.priv, c.Nonce[:]),
	}
}

// VerifyResponse completes the challenge/response run: the certificate
// must verify against the authority, the response must echo the issued
// challenge, and the signature must verify under the certified key. It
// returns the authenticated member ID.
func VerifyResponse(authorityKey ed25519.PublicKey, c Challenge, r Response, now time.Time) (int, error) {
	if err := VerifyCertificate(authorityKey, r.Cert, now); err != nil {
		return 0, err
	}
	if r.Nonce != c.Nonce {
		return 0, ErrChallengeMismatch
	}
	if !ed25519.Verify(r.Cert.PublicKey, r.Nonce[:], r.Signature) {
		return 0, ErrBadResponse
	}
	return r.Cert.MemberID, nil
}
