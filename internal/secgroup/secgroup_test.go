package secgroup

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/grpkey"
)

var farFuture = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

func newGroup(t *testing.T, ids ...int) *Group {
	t.Helper()
	g, err := New(ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMembersCanExchangeMessages(t *testing.T) {
	g := newGroup(t, 1, 2, 3)
	env, err := g.Send(1, []byte("rally at checkpoint bravo"))
	if err != nil {
		t.Fatal(err)
	}
	for _, receiver := range []int{2, 3} {
		pt, err := g.Receive(receiver, env, 1)
		if err != nil {
			t.Fatalf("member %d cannot read group traffic: %v", receiver, err)
		}
		if !bytes.Equal(pt, []byte("rally at checkpoint bravo")) {
			t.Fatalf("member %d got %q", receiver, pt)
		}
	}
}

func TestNonMemberCannotSendOrReceive(t *testing.T) {
	g := newGroup(t, 1, 2)
	if _, err := g.Send(99, []byte("x")); err != ErrNotMember {
		t.Fatalf("outsider send returned %v", err)
	}
	env, err := g.Send(1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Receive(99, env, 1); err != ErrNoKey {
		t.Fatalf("outsider receive returned %v", err)
	}
}

func TestForwardSecrecyAfterEviction(t *testing.T) {
	g := newGroup(t, 1, 2, 3)
	// Node 3 reads traffic fine before eviction.
	before, err := g.Send(1, []byte("pre-eviction"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Receive(3, before, 1); err != nil {
		t.Fatalf("member read failed: %v", err)
	}
	// IDS evicts node 3: the group rekeys.
	if err := g.Evict(3); err != nil {
		t.Fatal(err)
	}
	after, err := g.Send(1, []byte("post-eviction plans"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Receive(3, after, 1); err != ErrNoKey {
		t.Fatalf("evicted node decrypted new traffic (err=%v)", err)
	}
	// Remaining members still communicate.
	if _, err := g.Receive(2, after, 1); err != nil {
		t.Fatalf("remaining member read failed: %v", err)
	}
}

func TestForwardSecrecyAfterVoluntaryLeave(t *testing.T) {
	g := newGroup(t, 1, 2, 3)
	if err := g.Leave(2); err != nil {
		t.Fatal(err)
	}
	env, err := g.Send(1, []byte("after departure"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Receive(2, env, 1); err != ErrNoKey {
		t.Fatalf("departed node decrypted new traffic (err=%v)", err)
	}
}

func TestBackwardSecrecyForJoiner(t *testing.T) {
	g := newGroup(t, 1, 2)
	old, err := g.Send(1, []byte("before the join"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := g.Authority().Enroll(7, farFuture, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Join(id); err != nil {
		t.Fatal(err)
	}
	// The joiner reads new traffic...
	fresh, err := g.Send(2, []byte("after the join"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Receive(7, fresh, 2); err != nil {
		t.Fatalf("joiner cannot read current traffic: %v", err)
	}
	// ...but not the envelope recorded before it joined.
	if _, err := g.Receive(7, old, 1); err != ErrNoKey {
		t.Fatalf("joiner decrypted pre-join traffic (err=%v)", err)
	}
}

func TestJoinRequiresAuthentication(t *testing.T) {
	g := newGroup(t, 1)
	// An identity enrolled under a DIFFERENT authority must be refused.
	other := newGroup(t, 9)
	foreign, err := other.Authority().Enroll(5, farFuture, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Join(foreign); err == nil {
		t.Fatal("foreign identity admitted")
	}
	// An expired certificate must be refused.
	expired, err := g.Authority().Enroll(6, time.Unix(0, 0).UTC().Add(-time.Hour), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Join(expired); err == nil {
		t.Fatal("expired certificate admitted")
	}
}

func TestEvictedCannotRejoinEvenAuthenticated(t *testing.T) {
	g := newGroup(t, 1, 2)
	if err := g.Evict(2); err != nil {
		t.Fatal(err)
	}
	id, err := g.Authority().Enroll(2, farFuture, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Join(id); err == nil {
		t.Fatal("evicted node rejoined with valid credentials")
	}
}

func TestCompromisedUndetectedMemberStillDecrypts(t *testing.T) {
	// The premise of failure condition C1: until IDS evicts it, a
	// compromised member is cryptographically indistinguishable from a
	// healthy one and reads everything.
	g := newGroup(t, 1, 2, 3)
	if err := g.Compromise(3); err != nil {
		t.Fatal(err)
	}
	env, err := g.Send(1, []byte("the leak IDS must race"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := g.Receive(3, env, 1)
	if err != nil {
		t.Fatalf("compromised member blocked before detection: %v", err)
	}
	if !bytes.Equal(pt, []byte("the leak IDS must race")) {
		t.Fatal("plaintext mismatch")
	}
	// After eviction the leak channel closes.
	if err := g.Evict(3); err != nil {
		t.Fatal(err)
	}
	env2, err := g.Send(1, []byte("post-detection"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Receive(3, env2, 1); err != ErrNoKey {
		t.Fatalf("evicted attacker still decrypts (err=%v)", err)
	}
}

func TestEpochAdvancesPerChange(t *testing.T) {
	g := newGroup(t, 1, 2, 3)
	e0 := g.Epoch()
	if err := g.Leave(3); err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != e0+1 {
		t.Errorf("epoch %d after leave, want %d", g.Epoch(), e0+1)
	}
	id, err := g.Authority().Enroll(4, farFuture, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Join(id); err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != e0+2 {
		t.Errorf("epoch %d after join, want %d", g.Epoch(), e0+2)
	}
}

func TestRekeyTrafficAccumulates(t *testing.T) {
	g := newGroup(t, 1, 2, 3, 4)
	before := g.RekeyTraffic
	if before <= 0 {
		t.Fatal("initial key agreement recorded no traffic")
	}
	if err := g.Leave(4); err != nil {
		t.Fatal(err)
	}
	if g.RekeyTraffic <= before {
		t.Error("rekey recorded no traffic")
	}
}

func TestSenderBindingAAD(t *testing.T) {
	// An insider replaying a captured envelope under a different claimed
	// sender must fail authentication (AAD binds the sender).
	g := newGroup(t, 1, 2)
	env, err := g.Send(1, []byte("signed by 1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Receive(2, env, 99); err != grpkey.ErrDecrypt {
		t.Fatalf("sender spoof returned %v, want ErrDecrypt", err)
	}
}
