// Package secgroup is the end-to-end secure group communication stack: it
// composes member authentication (internal/auth), membership and view
// management (internal/gcs), GDH.2 contributory rekeying (internal/gdh),
// and epoch-bound group-key encryption (internal/grpkey) into the "secure
// GCS" of Section 2.1 of the paper:
//
//   - joins are admitted only after a certificate + challenge/response
//     authentication run,
//   - every membership change (join, leave, eviction) triggers a fresh
//     contributory key agreement among the remaining members,
//   - group messages are sealed under the current epoch key, so departed
//     or evicted members cannot read subsequent traffic (forward secrecy)
//     and joiners cannot read prior traffic (backward secrecy),
//   - a compromised but undetected member still decrypts everything —
//     which is exactly why the paper's C1 failure condition exists.
package secgroup

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/auth"
	"repro/internal/gcs"
	"repro/internal/gdh"
	"repro/internal/grpkey"
)

// Errors returned by group operations.
var (
	// ErrNotMember marks an operation by a node outside the group.
	ErrNotMember = errors.New("secgroup: not an active member")
	// ErrNoKey marks a member that holds no key for the envelope's epoch.
	ErrNoKey = errors.New("secgroup: no key for envelope epoch")
)

// Group is a secure group communication system instance. It simulates all
// members in one process (this is a protocol correctness substrate, not a
// network transport).
type Group struct {
	authority *auth.Authority
	dhGroup   *gdh.Group
	members   *gcs.Group

	// keyring[id] maps member -> epoch -> key material it received while
	// a member. Departed members keep their old keys (an attacker would),
	// but never receive new ones.
	keyring map[int]map[uint64]*grpkey.EpochKey

	now time.Time
	// RekeyTraffic accumulates GDH wire values across the group's life,
	// for cost accounting in examples.
	RekeyTraffic int64
}

// New creates a secure group with the given initial members. A fresh
// mission authority is generated; initial members are enrolled and keyed
// without challenge/response (they deploy together).
func New(initialMembers []int, dhGroup *gdh.Group) (*Group, error) {
	if dhGroup == nil {
		dhGroup = gdh.NewTestGroup()
	}
	authority, err := auth.NewAuthority(nil)
	if err != nil {
		return nil, err
	}
	members, err := gcs.New(initialMembers)
	if err != nil {
		return nil, err
	}
	g := &Group{
		authority: authority,
		dhGroup:   dhGroup,
		members:   members,
		keyring:   make(map[int]map[uint64]*grpkey.EpochKey),
		now:       time.Unix(0, 0).UTC(),
	}
	if err := g.rekey(); err != nil {
		return nil, err
	}
	return g, nil
}

// Authority exposes the mission authority so tests and examples can enroll
// joiner identities.
func (g *Group) Authority() *auth.Authority { return g.authority }

// Members returns the active member IDs.
func (g *Group) Members() []int { return g.members.Members() }

// Epoch returns the current key epoch.
func (g *Group) Epoch() uint64 { return g.members.Epoch() }

// AdvanceTime moves the group's clock (used for certificate validity).
func (g *Group) AdvanceTime(d time.Duration) { g.now = g.now.Add(d) }

// rekey runs a fresh GDH agreement over the active membership and hands
// the derived epoch key to every active member.
func (g *Group) rekey() error {
	active := g.members.Members()
	if len(active) == 0 {
		return nil
	}
	session, err := gdh.Run(g.dhGroup, len(active))
	if err != nil {
		return fmt.Errorf("secgroup: rekey agreement: %w", err)
	}
	g.RekeyTraffic += int64(gdh.NumValues(len(active)))
	epoch := g.members.Epoch()
	key, err := grpkey.Derive(session.Key(), epoch)
	if err != nil {
		return fmt.Errorf("secgroup: deriving epoch key: %w", err)
	}
	for _, id := range active {
		if g.keyring[id] == nil {
			g.keyring[id] = make(map[uint64]*grpkey.EpochKey)
		}
		g.keyring[id][epoch] = key
	}
	return nil
}

// Join admits a node after a challenge/response authentication run, then
// rekeys (backward secrecy: the joiner receives only the new epoch key).
func (g *Group) Join(identity *auth.Identity) error {
	challenge, err := auth.NewChallenge(nil)
	if err != nil {
		return err
	}
	resp := identity.Respond(challenge)
	id, err := auth.VerifyResponse(g.authority.PublicKey(), challenge, resp, g.now)
	if err != nil {
		return fmt.Errorf("secgroup: join authentication: %w", err)
	}
	if _, err := g.members.Join(id); err != nil {
		return err
	}
	return g.rekey()
}

// Leave removes a voluntarily departing member and rekeys.
func (g *Group) Leave(id int) error {
	if _, err := g.members.Leave(id); err != nil {
		return err
	}
	return g.rekey()
}

// Evict forcibly removes a member (an IDS verdict) and rekeys. The node is
// banned from rejoining by the membership layer.
func (g *Group) Evict(id int) error {
	if _, err := g.members.Evict(id); err != nil {
		return err
	}
	return g.rekey()
}

// Compromise marks a member as compromised (attacker-side state). The node
// keeps participating — and decrypting — until IDS evicts it.
func (g *Group) Compromise(id int) error { return g.members.Compromise(id) }

// Send seals a message from an active member under the current epoch key.
func (g *Group) Send(sender int, plaintext []byte) (grpkey.Envelope, error) {
	st, ok := g.members.Status(sender)
	if !ok || (st != gcs.StatusTrusted && st != gcs.StatusCompromised) {
		return grpkey.Envelope{}, ErrNotMember
	}
	key := g.keyring[sender][g.members.Epoch()]
	if key == nil {
		return grpkey.Envelope{}, ErrNoKey
	}
	return key.Seal(nil, plaintext, senderAAD(sender))
}

// Receive opens an envelope with whatever key material the given node
// holds for the envelope's epoch — whether or not the node is still a
// member. This models the adversary's capability honestly: possession of
// key material, not membership status, decides decryption.
func (g *Group) Receive(node int, env grpkey.Envelope, sender int) ([]byte, error) {
	ring := g.keyring[node]
	if ring == nil {
		return nil, ErrNoKey
	}
	key := ring[env.Epoch]
	if key == nil {
		return nil, ErrNoKey
	}
	return key.Open(env, senderAAD(sender))
}

func senderAAD(sender int) []byte {
	return []byte(fmt.Sprintf("sender=%d", sender))
}
