// Package voting implements the majority-voting analysis of the paper's
// Equation 1: the false-positive probability Pfp (a healthy target node is
// evicted) and false-negative probability Pfn (a compromised target node is
// retained) of voting-based intrusion detection, as functions of
//
//   - the per-node host-based IDS error probabilities p1 (false negative)
//     and p2 (false positive),
//   - the number of vote participants m,
//   - and the current population of good and compromised (colluding) nodes.
//
// The model follows Section 4.1 of the paper: m voters are drawn uniformly
// without replacement from the N-1 nodes other than the target. A
// compromised voter always votes maliciously — against a good target (to
// evict healthy nodes) and for a bad target (to keep fellow attackers). A
// good voter errs independently with probability p2 against a good target
// and p1 for a bad target. The target is evicted iff at least
// Nmajority = floor(m/2)+1 of the m votes are negative.
package voting

import (
	"fmt"
	"math/rand"

	"repro/internal/combin"
)

// Params bundles the voting-IDS configuration.
type Params struct {
	M  int     // number of vote participants requested
	P1 float64 // per-node host IDS false-negative probability
	P2 float64 // per-node host IDS false-positive probability
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.M < 1 {
		return fmt.Errorf("voting: m must be >= 1, got %d", p.M)
	}
	if p.P1 < 0 || p.P1 > 1 {
		return fmt.Errorf("voting: p1 = %v outside [0,1]", p.P1)
	}
	if p.P2 < 0 || p.P2 > 1 {
		return fmt.Errorf("voting: p2 = %v outside [0,1]", p.P2)
	}
	return nil
}

// Majority returns the strict-majority threshold for m voters:
// floor(m/2) + 1.
func Majority(m int) int { return m/2 + 1 }

// EffectiveM returns the number of voters actually used: the requested m
// capped by the pool of eligible voters. A smaller group simply votes with
// everyone available, as the protocol does in a partitioned mobile group.
func EffectiveM(pool, m int) int {
	if pool < m {
		return pool
	}
	return m
}

// FalsePositive returns Pfp: the probability that a *good* target node is
// evicted by a voting round, when the group currently holds nGood good
// members (including the target) and nBad undetected compromised members.
//
// Eviction requires >= Majority(m) negative votes; negative votes come from
// every compromised voter (collusion) and from good voters that err with
// probability p2.
func FalsePositive(nGood, nBad, m int, p2 float64) float64 {
	if nGood < 1 {
		return 0 // no good node exists to be falsely evicted
	}
	pool := (nGood - 1) + nBad
	m = EffectiveM(pool, m)
	if m < 1 {
		return 0 // nobody to vote: no eviction can happen
	}
	maj := Majority(m)
	p := 0.0
	lo, hi := combin.HypergeomSupport(pool, nBad, m)
	for k := lo; k <= hi; k++ { // k compromised voters among the m
		hyp := combin.HypergeomPMF(pool, nBad, m, k)
		if hyp == 0 {
			continue
		}
		need := maj - k // additional negative votes needed from good voters
		p += hyp * combin.BinomialTail(m-k, p2, need)
	}
	return combin.ClampProb(p)
}

// FalseNegative returns Pfn: the probability that a *compromised* target
// node survives a voting round, when the group holds nGood good members and
// nBad undetected compromised members (including the target).
//
// The target survives when negative votes fall short of Majority(m);
// negative votes come only from good voters that detect correctly with
// probability 1-p1 (compromised voters vote to keep the target).
func FalseNegative(nGood, nBad, m int, p1 float64) float64 {
	if nBad < 1 {
		return 0 // vacuous: no bad target exists
	}
	pool := nGood + (nBad - 1)
	m = EffectiveM(pool, m)
	if m < 1 {
		return 1 // nobody can vote: the bad node is trivially kept
	}
	maj := Majority(m)
	p := 0.0
	lo, hi := combin.HypergeomSupport(pool, nBad-1, m)
	for k := lo; k <= hi; k++ { // k compromised voters among the m
		hyp := combin.HypergeomPMF(pool, nBad-1, m, k)
		if hyp == 0 {
			continue
		}
		// Negative votes ~ Binomial(m-k, 1-p1); target kept if < maj.
		p += hyp * combin.BinomialCDF(m-k, 1-p1, maj-1)
	}
	return combin.ClampProb(p)
}

// Probabilities returns (Pfn, Pfp) for the given group composition under
// the parameters, the pair consumed by the SPN transitions T_IDS and T_FA.
func (p Params) Probabilities(nGood, nBad int) (pfn, pfp float64) {
	return FalseNegative(nGood, nBad, p.M, p.P1),
		FalsePositive(nGood, nBad, p.M, p.P2)
}

// FalseAlarm returns the combined false-alarm probability Pfp + Pfn used in
// the paper's discussion of the effect of m (Section 5, Figure 2).
func (p Params) FalseAlarm(nGood, nBad int) float64 {
	pfn, pfp := p.Probabilities(nGood, nBad)
	return pfn + pfp
}

// ClusterHeadFalsePositive returns Pfp for the cluster-head IDS
// architecture of the paper's related work ([1], [12], [14] in its
// bibliography): a single head node collects the evidence and decides
// alone. The head is a uniformly random group member; a compromised head
// evicts healthy nodes deliberately, a healthy head errs with p2.
func ClusterHeadFalsePositive(nGood, nBad int, p2 float64) float64 {
	if nGood < 1 {
		return 0
	}
	pool := (nGood - 1) + nBad // the target does not judge itself
	if pool < 1 {
		return 0
	}
	fracBad := float64(nBad) / float64(pool)
	return combin.ClampProb(fracBad + (1-fracBad)*p2)
}

// ClusterHeadFalseNegative returns Pfn for cluster-head IDS: a compromised
// head always keeps a compromised target; a healthy head misses with p1.
func ClusterHeadFalseNegative(nGood, nBad int, p1 float64) float64 {
	if nBad < 1 {
		return 0
	}
	pool := nGood + (nBad - 1)
	if pool < 1 {
		return 1
	}
	fracBad := float64(nBad-1) / float64(pool)
	return combin.ClampProb(fracBad + (1-fracBad)*p1)
}

// SimulateFalsePositive estimates Pfp by direct Monte Carlo simulation of
// the voting protocol: trials voting rounds on a good target. It exists to
// cross-validate the closed form against an independent implementation.
func SimulateFalsePositive(rng *rand.Rand, nGood, nBad, m int, p2 float64, trials int) float64 {
	if nGood < 1 {
		return 0
	}
	pool := (nGood - 1) + nBad
	m = EffectiveM(pool, m)
	if m < 1 {
		return 0
	}
	maj := Majority(m)
	voters := make([]int, pool) // 1 = compromised voter
	for i := 0; i < nBad; i++ {
		voters[i] = 1
	}
	evictions := 0
	for t := 0; t < trials; t++ {
		rng.Shuffle(pool, func(i, j int) { voters[i], voters[j] = voters[j], voters[i] })
		neg := 0
		for v := 0; v < m; v++ {
			if voters[v] == 1 || rng.Float64() < p2 {
				neg++
			}
		}
		if neg >= maj {
			evictions++
		}
	}
	return float64(evictions) / float64(trials)
}

// SimulateFalseNegative estimates Pfn by Monte Carlo simulation of voting
// rounds on a compromised target.
func SimulateFalseNegative(rng *rand.Rand, nGood, nBad, m int, p1 float64, trials int) float64 {
	if nBad < 1 {
		return 0
	}
	pool := nGood + (nBad - 1)
	m = EffectiveM(pool, m)
	if m < 1 {
		return 1
	}
	maj := Majority(m)
	voters := make([]int, pool)
	for i := 0; i < nBad-1; i++ {
		voters[i] = 1
	}
	kept := 0
	for t := 0; t < trials; t++ {
		rng.Shuffle(pool, func(i, j int) { voters[i], voters[j] = voters[j], voters[i] })
		neg := 0
		for v := 0; v < m; v++ {
			if voters[v] == 0 && rng.Float64() < 1-p1 {
				neg++
			}
		}
		if neg < maj {
			kept++
		}
	}
	return float64(kept) / float64(trials)
}
