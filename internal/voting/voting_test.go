package voting

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMajority(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 7: 4, 9: 5}
	for m, want := range cases {
		if got := Majority(m); got != want {
			t.Errorf("Majority(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestEffectiveM(t *testing.T) {
	if got := EffectiveM(3, 5); got != 3 {
		t.Errorf("EffectiveM(3,5) = %d, want 3", got)
	}
	if got := EffectiveM(10, 5); got != 5 {
		t.Errorf("EffectiveM(10,5) = %d, want 5", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{M: 5, P1: 0.01, P2: 0.01}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{M: 0, P1: 0.01, P2: 0.01},
		{M: 5, P1: -0.1, P2: 0.01},
		{M: 5, P1: 0.01, P2: 1.5},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid params %+v accepted", p)
		}
	}
}

func TestNoAttackersPerfectDetectors(t *testing.T) {
	// With no compromised nodes and p2 = 0, a good node is never evicted.
	if got := FalsePositive(20, 0, 5, 0); got != 0 {
		t.Errorf("Pfp = %v, want 0", got)
	}
	// With p1 = 0 and no other attackers, a single bad target facing all
	// good voters is always detected.
	if got := FalseNegative(20, 1, 5, 0); got != 0 {
		t.Errorf("Pfn = %v, want 0", got)
	}
}

func TestAllVotersCompromised(t *testing.T) {
	// Pool made entirely of colluders: a good target is always evicted...
	if got := FalsePositive(1, 10, 5, 0); !approx(got, 1, 1e-12) {
		t.Errorf("Pfp = %v, want 1", got)
	}
	// ...and a bad target is always kept.
	if got := FalseNegative(0, 10, 5, 0); !approx(got, 1, 1e-12) {
		t.Errorf("Pfn = %v, want 1", got)
	}
}

func TestEmptyPoolConventions(t *testing.T) {
	// Single good node, no attackers: nobody can vote, no eviction.
	if got := FalsePositive(1, 0, 5, 0.5); got != 0 {
		t.Errorf("Pfp empty pool = %v, want 0", got)
	}
	// Single bad node, nobody else: trivially kept.
	if got := FalseNegative(0, 1, 5, 0.5); got != 1 {
		t.Errorf("Pfn empty pool = %v, want 1", got)
	}
	// Vacuous queries.
	if got := FalsePositive(0, 5, 3, 0.1); got != 0 {
		t.Errorf("Pfp with no good nodes = %v, want 0", got)
	}
	if got := FalseNegative(5, 0, 3, 0.1); got != 0 {
		t.Errorf("Pfn with no bad nodes = %v, want 0", got)
	}
}

func TestSingleVoterReducesToHostIDS(t *testing.T) {
	// m = 1 with an all-good pool: Pfp = p2 and Pfn = p1 exactly.
	p1, p2 := 0.07, 0.13
	if got := FalsePositive(50, 0, 1, p2); !approx(got, p2, 1e-12) {
		t.Errorf("Pfp(m=1) = %v, want %v", got, p2)
	}
	if got := FalseNegative(50, 1, 1, p1); !approx(got, p1, 1e-12) {
		t.Errorf("Pfn(m=1) = %v, want %v", got, p1)
	}
}

func TestHandComputedThreeVoters(t *testing.T) {
	// nGood=3 (target + 2 good voters), nBad=1, m=3: pool = 2 good + 1
	// bad, all three vote. Majority = 2. The bad voter always votes
	// against the good target, so eviction needs >= 1 erroneous negative
	// from the 2 good voters: Pfp = 1 - (1-p2)^2.
	p2 := 0.1
	want := 1 - (1-p2)*(1-p2)
	if got := FalsePositive(3, 1, 3, p2); !approx(got, want, 1e-12) {
		t.Errorf("Pfp = %v, want %v", got, want)
	}
	// Bad target, nGood=3, nBad=2, m=3: pool = 3 good + 1 bad; draws of
	// the bad co-voter: k=1 w.p. C(1,1)C(3,2)/C(4,3)=3/4, k=0 w.p. 1/4.
	// k=1: negatives ~ Binom(2, 1-p1), kept if < 2.
	// k=0: negatives ~ Binom(3, 1-p1), kept if < 2.
	p1 := 0.2
	q := 1 - p1
	pk1 := 1 - q*q                               // < 2 successes out of 2
	pk0 := math.Pow(p1, 3) + 3*q*math.Pow(p1, 2) // 0 or 1 success of 3
	want = 0.75*pk1 + 0.25*pk0
	if got := FalseNegative(3, 2, 3, p1); !approx(got, want, 1e-12) {
		t.Errorf("Pfn = %v, want %v", got, want)
	}
}

func TestProbabilitiesInRangeProperty(t *testing.T) {
	f := func(g, b, mRaw uint8, p1Raw, p2Raw float64) bool {
		nGood := int(g % 60)
		nBad := int(b % 60)
		m := int(mRaw%12) + 1
		p1 := math.Abs(p1Raw)
		p1 -= math.Floor(p1)
		p2 := math.Abs(p2Raw)
		p2 -= math.Floor(p2)
		pfn := FalseNegative(nGood, nBad, m, p1)
		pfp := FalsePositive(nGood, nBad, m, p2)
		return pfn >= 0 && pfn <= 1 && pfp >= 0 && pfp <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMonotoneInErrorProbability(t *testing.T) {
	// Pfp grows with p2; Pfn grows with p1 (more host-IDS error, more
	// voting error), for a fixed composition.
	nGood, nBad, m := 30, 4, 5
	prevFP, prevFN := -1.0, -1.0
	for _, p := range []float64{0, 0.01, 0.05, 0.1, 0.3, 0.6, 1} {
		fp := FalsePositive(nGood, nBad, m, p)
		fn := FalseNegative(nGood, nBad, m, p)
		if fp < prevFP-1e-12 {
			t.Errorf("Pfp not monotone at p=%v: %v < %v", p, fp, prevFP)
		}
		if fn < prevFN-1e-12 {
			t.Errorf("Pfn not monotone at p=%v: %v < %v", p, fn, prevFN)
		}
		prevFP, prevFN = fp, fn
	}
}

func TestMoreVotersReduceFalseAlarmUnderCollusion(t *testing.T) {
	// The paper's Figure 2 rationale: with a minority of colluders, a
	// larger odd m lowers Pfp + Pfn.
	nGood, nBad := 30, 4
	p := Params{P1: 0.01, P2: 0.01}
	prev := math.Inf(1)
	for _, m := range []int{1, 3, 5, 7, 9} {
		p.M = m
		fa := p.FalseAlarm(nGood, nBad)
		if fa > prev+1e-12 {
			t.Errorf("false alarm not decreasing at m=%d: %v > %v", m, fa, prev)
		}
		prev = fa
	}
}

func TestCollusionIncreasesError(t *testing.T) {
	// Adding compromised nodes to the pool must not decrease Pfp or Pfn.
	m := 5
	prevFP, prevFN := -1.0, -1.0
	for nBad := 0; nBad <= 10; nBad++ {
		fp := FalsePositive(20, nBad, m, 0.01)
		if fp < prevFP-1e-12 {
			t.Errorf("Pfp decreased when adding colluder %d: %v < %v", nBad, fp, prevFP)
		}
		prevFP = fp
	}
	for nBad := 1; nBad <= 10; nBad++ {
		fn := FalseNegative(20, nBad, m, 0.01)
		if fn < prevFN-1e-12 {
			t.Errorf("Pfn decreased when adding colluder %d: %v < %v", nBad, fn, prevFN)
		}
		prevFN = fn
	}
}

func TestClosedFormMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 200000
	cases := []struct {
		nGood, nBad, m int
		p              float64
	}{
		{20, 3, 5, 0.05},
		{10, 5, 7, 0.01},
		{8, 2, 3, 0.2},
		{4, 3, 9, 0.1}, // m capped by pool
	}
	for _, c := range cases {
		want := FalsePositive(c.nGood, c.nBad, c.m, c.p)
		got := SimulateFalsePositive(rng, c.nGood, c.nBad, c.m, c.p, trials)
		if math.Abs(got-want) > 0.005 {
			t.Errorf("Pfp(%+v): closed form %v vs MC %v", c, want, got)
		}
		want = FalseNegative(c.nGood, c.nBad, c.m, c.p)
		got = SimulateFalseNegative(rng, c.nGood, c.nBad, c.m, c.p, trials)
		if math.Abs(got-want) > 0.005 {
			t.Errorf("Pfn(%+v): closed form %v vs MC %v", c, want, got)
		}
	}
}

func TestClusterHeadProbabilities(t *testing.T) {
	// No compromised nodes: pure host-IDS error rates.
	if got := ClusterHeadFalsePositive(20, 0, 0.02); !approx(got, 0.02, 1e-12) {
		t.Errorf("CH Pfp clean group = %v, want p2", got)
	}
	if got := ClusterHeadFalseNegative(20, 1, 0.03); !approx(got, 0.03, 1e-12) {
		t.Errorf("CH Pfn lone attacker = %v, want p1", got)
	}
	// Half the candidate heads compromised: errors dominated by the
	// subverted-head case.
	pfp := ClusterHeadFalsePositive(11, 10, 0.01) // pool 10 good + 10 bad
	if !approx(pfp, 0.5+0.5*0.01, 1e-12) {
		t.Errorf("CH Pfp half-bad = %v", pfp)
	}
	pfn := ClusterHeadFalseNegative(10, 11, 0.01)
	if !approx(pfn, 0.5+0.5*0.01, 1e-12) {
		t.Errorf("CH Pfn half-bad = %v", pfn)
	}
	// Degenerate pools.
	if got := ClusterHeadFalsePositive(1, 0, 0.5); got != 0 {
		t.Errorf("CH Pfp empty pool = %v", got)
	}
	if got := ClusterHeadFalseNegative(0, 1, 0.5); got != 1 {
		t.Errorf("CH Pfn empty pool = %v", got)
	}
	if got := ClusterHeadFalsePositive(0, 5, 0.5); got != 0 {
		t.Errorf("CH Pfp no good nodes = %v", got)
	}
	if got := ClusterHeadFalseNegative(5, 0, 0.5); got != 0 {
		t.Errorf("CH Pfn no bad nodes = %v", got)
	}
}

func TestClusterHeadWorseThanVotingUnderCollusion(t *testing.T) {
	// The reason the paper chooses voting: with colluders present, a
	// majority panel suppresses the single-point-of-subversion risk.
	nGood, nBad := 20, 4
	p1, p2 := 0.01, 0.01
	if ch, vote := ClusterHeadFalsePositive(nGood, nBad, p2), FalsePositive(nGood, nBad, 5, p2); ch <= vote {
		t.Errorf("CH Pfp %v not worse than voting %v", ch, vote)
	}
	if ch, vote := ClusterHeadFalseNegative(nGood, nBad, p1), FalseNegative(nGood, nBad, 5, p1); ch <= vote {
		t.Errorf("CH Pfn %v not worse than voting %v", ch, vote)
	}
}

func TestProbabilitiesPair(t *testing.T) {
	p := Params{M: 5, P1: 0.02, P2: 0.03}
	pfn, pfp := p.Probabilities(25, 3)
	if pfn != FalseNegative(25, 3, 5, 0.02) {
		t.Error("Probabilities pfn mismatch")
	}
	if pfp != FalsePositive(25, 3, 5, 0.03) {
		t.Error("Probabilities pfp mismatch")
	}
}
