package cost

import "fmt"

// The paper's related-work section faults prior MANET IDS designs for
// ignoring "the issues of extra latency and energy consumption". This file
// supplies the energy accounting the critique asks for, as a straight
// extension of the traffic model: every hop·bit of Ĉtotal is one radio
// transmission plus one reception, and idle listening burns a baseline per
// node. First-order radio-energy models of this form are standard for
// MANET lifetime studies.

// EnergyParams are the radio energy coefficients.
type EnergyParams struct {
	// TxPerBit is the transmit energy per bit in joules.
	TxPerBit float64
	// RxPerBit is the receive energy per bit in joules.
	RxPerBit float64
	// IdlePerNodeSec is the idle-listening power per node in watts.
	IdlePerNodeSec float64
}

// DefaultEnergyParams returns coefficients typical of 802.11-class MANET
// radios used in energy studies: ~0.6 µJ/bit transmit, ~0.3 µJ/bit
// receive, ~10 mW idle listening.
func DefaultEnergyParams() EnergyParams {
	return EnergyParams{
		TxPerBit:       0.6e-6,
		RxPerBit:       0.3e-6,
		IdlePerNodeSec: 0.010,
	}
}

// Validate checks the coefficients.
func (e EnergyParams) Validate() error {
	if e.TxPerBit < 0 || e.RxPerBit < 0 || e.IdlePerNodeSec < 0 {
		return fmt.Errorf("cost: negative energy coefficient in %+v", e)
	}
	if e.TxPerBit == 0 && e.RxPerBit == 0 && e.IdlePerNodeSec == 0 {
		return fmt.Errorf("cost: all energy coefficients zero")
	}
	return nil
}

// EnergyReport is the power draw of the whole group and its decomposition.
type EnergyReport struct {
	// RadioW is the traffic-driven power: every hop·bit/s of Ĉtotal costs
	// one transmission and one reception.
	RadioW float64
	// IdleW is the idle-listening power across all nodes.
	IdleW float64
	// TotalW is the group's total power draw.
	TotalW float64
	// PerNodeW is TotalW averaged over the nodes.
	PerNodeW float64
}

// Energy converts a traffic breakdown into a power report for a system of
// `nodes` active members.
func (e EnergyParams) Energy(b Breakdown, nodes int) (EnergyReport, error) {
	if err := e.Validate(); err != nil {
		return EnergyReport{}, err
	}
	if nodes < 1 {
		return EnergyReport{}, fmt.Errorf("cost: energy for %d nodes", nodes)
	}
	var r EnergyReport
	r.RadioW = b.Total() * (e.TxPerBit + e.RxPerBit)
	r.IdleW = float64(nodes) * e.IdlePerNodeSec
	r.TotalW = r.RadioW + r.IdleW
	r.PerNodeW = r.TotalW / float64(nodes)
	return r, nil
}

// MissionEnergy returns the expected total energy of a mission in joules:
// the group's power draw integrated over the mission lifetime.
func (e EnergyParams) MissionEnergy(b Breakdown, nodes int, missionSeconds float64) (float64, error) {
	if missionSeconds < 0 {
		return 0, fmt.Errorf("cost: negative mission time %v", missionSeconds)
	}
	r, err := e.Energy(b, nodes)
	if err != nil {
		return 0, err
	}
	return r.TotalW * missionSeconds, nil
}
