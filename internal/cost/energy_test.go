package cost

import (
	"math"
	"testing"
)

func TestDefaultEnergyParamsValid(t *testing.T) {
	if err := DefaultEnergyParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyValidation(t *testing.T) {
	bad := []EnergyParams{
		{TxPerBit: -1, RxPerBit: 1, IdlePerNodeSec: 1},
		{},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	e := DefaultEnergyParams()
	if _, err := e.Energy(Breakdown{GC: 1}, 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := e.MissionEnergy(Breakdown{GC: 1}, 10, -5); err == nil {
		t.Error("negative mission time accepted")
	}
}

func TestEnergyDecomposition(t *testing.T) {
	e := EnergyParams{TxPerBit: 2e-6, RxPerBit: 1e-6, IdlePerNodeSec: 0.01}
	b := Breakdown{GC: 100000} // 1e5 hop·bits/s
	r, err := e.Energy(b, 50)
	if err != nil {
		t.Fatal(err)
	}
	wantRadio := 1e5 * 3e-6 // 0.3 W
	if math.Abs(r.RadioW-wantRadio) > 1e-12 {
		t.Errorf("RadioW = %v, want %v", r.RadioW, wantRadio)
	}
	if math.Abs(r.IdleW-0.5) > 1e-12 {
		t.Errorf("IdleW = %v, want 0.5", r.IdleW)
	}
	if math.Abs(r.TotalW-(wantRadio+0.5)) > 1e-12 {
		t.Errorf("TotalW = %v", r.TotalW)
	}
	if math.Abs(r.PerNodeW-r.TotalW/50) > 1e-15 {
		t.Errorf("PerNodeW = %v", r.PerNodeW)
	}
}

func TestEnergyScalesWithTraffic(t *testing.T) {
	e := DefaultEnergyParams()
	low, err := e.Energy(Breakdown{GC: 1e5}, 100)
	if err != nil {
		t.Fatal(err)
	}
	high, err := e.Energy(Breakdown{GC: 2e5}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if high.RadioW != 2*low.RadioW {
		t.Errorf("radio power not linear in traffic: %v vs %v", high.RadioW, 2*low.RadioW)
	}
	if high.IdleW != low.IdleW {
		t.Error("idle power should not depend on traffic")
	}
}

func TestMissionEnergy(t *testing.T) {
	e := EnergyParams{TxPerBit: 1e-6, RxPerBit: 1e-6, IdlePerNodeSec: 0.01}
	b := Breakdown{GC: 5e5}
	j, err := e.MissionEnergy(b, 100, 3600)
	if err != nil {
		t.Fatal(err)
	}
	// Power: 5e5*2e-6 = 1 W radio + 1 W idle = 2 W; over an hour = 7200 J.
	if math.Abs(j-7200) > 1e-6 {
		t.Errorf("MissionEnergy = %v J, want 7200", j)
	}
}

func TestPaperScaleEnergyPlausible(t *testing.T) {
	// At the paper's operating point (Ĉtotal ~5e5 hop·bits/s, 100 nodes)
	// the per-node power should land in the tens-of-milliwatts band a
	// MANET radio actually draws.
	e := DefaultEnergyParams()
	r, err := e.Energy(Breakdown{GC: 5e5}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.PerNodeW < 1e-3 || r.PerNodeW > 1 {
		t.Errorf("per-node power %v W implausible", r.PerNodeW)
	}
}
