// Package cost implements the communication traffic cost model of Section
// 4.2: Ĉtotal, the total traffic incurred per time unit in hop·bits/s,
// decomposed exactly as the paper decomposes it —
//
//	Ĉtotal,i = ĈGC,i + Ĉstatus,i + Ĉrekey,i + ĈIDS,i + Ĉbeacon,i + Ĉmp,i
//
// for a system state with a given number of groups and per-group
// composition. Every component multiplies a message rate (1/s), a message
// size (bits), and a hop multiplier (link transmissions per message), so
// the unit is hop·bits/s throughout; dividing Ĉtotal by the shared wireless
// bandwidth gives the channel utilization that bounds per-packet delay.
package cost

import "fmt"

// Params are the static traffic parameters of the cost model. All sizes
// are in bits, all rates in events per second.
type Params struct {
	// PacketBits is the size of a group-communication data packet.
	PacketBits float64
	// StatusBits is the size of one host-IDS status exchange message.
	StatusBits float64
	// StatusRate is the per-node rate of status exchange with neighbors.
	StatusRate float64
	// VoteBits is the size of one vote message in voting-based IDS.
	VoteBits float64
	// BeaconBits is the size of a periodic one-hop beacon.
	BeaconBits float64
	// BeaconRate is the per-node beacon rate.
	BeaconRate float64
	// GDHElementBits is the wire size of one GDH group element (the key
	// agreement's modulus size).
	GDHElementBits int
	// MeanHops is the mean hop count between reachable node pairs, from
	// the MANET calibration; it multiplies unicast traffic.
	MeanHops float64
	// MeanDegree is the mean one-hop neighbor count, multiplying local
	// (neighbor-scope) traffic such as status exchange.
	MeanDegree float64
	// LambdaQ is the per-node group communication (data packet) rate.
	LambdaQ float64
	// JoinRate and LeaveRate are per-node membership change rates; each
	// change triggers a GDH rekey.
	JoinRate, LeaveRate float64
	// M is the number of vote participants per voting round.
	M int
}

// DefaultParams returns sizes and rates consistent with the paper's
// environment (Section 5): λq = 1/min, join 1/hr, leave 1/(4 hr), GDH key
// agreement over a 1536-bit group, small control messages.
func DefaultParams() Params {
	return Params{
		PacketBits:     512 * 8, // 512-byte application payload
		StatusBits:     64 * 8,
		StatusRate:     1.0 / 10,
		VoteBits:       16 * 8,
		BeaconBits:     8 * 8,
		BeaconRate:     1,
		GDHElementBits: 1536,
		MeanHops:       3,
		MeanDegree:     8,
		LambdaQ:        1.0 / 60,
		JoinRate:       1.0 / 3600,
		LeaveRate:      1.0 / (4 * 3600),
		M:              5,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.PacketBits <= 0, p.StatusBits < 0, p.VoteBits < 0, p.BeaconBits < 0:
		return fmt.Errorf("cost: non-positive message size in %+v", p)
	case p.StatusRate < 0, p.BeaconRate < 0, p.LambdaQ < 0, p.JoinRate < 0, p.LeaveRate < 0:
		return fmt.Errorf("cost: negative rate in %+v", p)
	case p.GDHElementBits <= 0:
		return fmt.Errorf("cost: GDHElementBits = %d", p.GDHElementBits)
	case p.MeanHops < 1:
		return fmt.Errorf("cost: MeanHops = %v < 1", p.MeanHops)
	case p.MeanDegree < 0:
		return fmt.Errorf("cost: negative MeanDegree %v", p.MeanDegree)
	case p.M < 1:
		return fmt.Errorf("cost: M = %d < 1", p.M)
	}
	return nil
}

// State is the dynamic input evaluated per SPN state.
type State struct {
	// GroupSize is the number of active members in one group.
	GroupSize int
	// Groups is the current number of groups (mark(NG)).
	Groups int
	// DetectionRate is D(md), the per-group IDS invocation rate (1/s).
	DetectionRate float64
	// EvictionRekeyRate is the per-group rate of evictions (extra rekeys
	// beyond join/leave churn).
	EvictionRekeyRate float64
	// PartitionRate and MergeRate are the group birth/death rates from
	// mobility calibration.
	PartitionRate, MergeRate float64
	// ClusterHead switches the IDS traffic term from per-target voting
	// panels to one status report per member per round (the cluster-head
	// architecture of the paper's related work).
	ClusterHead bool
}

// Breakdown is the per-component cost, each in hop·bits/s.
type Breakdown struct {
	GC     float64 // group communication (data multicast)
	Status float64 // host-IDS status exchange with neighbors
	Rekey  float64 // GDH rekeying on join/leave/eviction
	IDS    float64 // voting traffic of periodic IDS rounds
	Beacon float64 // one-hop beacons
	MP     float64 // group merge/partition reconfiguration
}

// Total returns the sum of all components: Ĉtotal,i.
func (b Breakdown) Total() float64 {
	return b.GC + b.Status + b.Rekey + b.IDS + b.Beacon + b.MP
}

// gdhValues is the GDH.2 wire value count (n-1)(n+4)/2, duplicated from
// package gdh's closed form to keep this package's arithmetic explicit.
func gdhValues(n int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n-1) * float64(n+4) / 2
}

// Evaluate computes the cost breakdown for a state. Groups and GroupSize
// below 1 contribute zero cost.
func (p Params) Evaluate(s State) Breakdown {
	if s.Groups < 1 || s.GroupSize < 1 {
		return Breakdown{}
	}
	n := float64(s.GroupSize)
	g := float64(s.Groups)
	var b Breakdown

	// Group communication: each member multicasts data packets at rate
	// LambdaQ; BFS-tree delivery to a group of n costs n-1 link
	// transmissions per packet.
	b.GC = g * n * p.LambdaQ * p.PacketBits * (n - 1)

	// Status exchange: neighbor-scope gossip of host-IDS observations.
	b.Status = g * n * p.StatusRate * p.StatusBits * p.MeanDegree

	// Rekeying: join/leave churn plus IDS evictions, each a full GDH.2
	// run whose values travel MeanHops on average.
	rekeyRate := n*(p.JoinRate+p.LeaveRate) + s.EvictionRekeyRate
	rekeyBits := gdhValues(s.GroupSize) * float64(p.GDHElementBits)
	b.Rekey = g * rekeyRate * rekeyBits * p.MeanHops

	// IDS traffic per invocation. Voting: every member is assessed by a
	// panel of m voters; each voter unicasts a vote to the panel
	// coordinator and the verdict is multicast back (m + m transmissions
	// of VoteBits per target, each over MeanHops). Cluster-head: each
	// member unicasts one status report to the head per round.
	var perRound float64
	if s.ClusterHead {
		perRound = n * p.VoteBits * p.MeanHops
	} else {
		mEff := float64(p.M)
		if pool := n - 1; pool < mEff {
			mEff = pool
			if mEff < 0 {
				mEff = 0
			}
		}
		perRound = n * (2 * mEff) * p.VoteBits * p.MeanHops
	}
	b.IDS = g * s.DetectionRate * perRound

	// Beacons: one-hop broadcasts.
	b.Beacon = g * n * p.BeaconRate * p.BeaconBits

	// Merge/partition: each event reforms group state with a GDH rekey
	// across the affected membership.
	b.MP = (s.PartitionRate + s.MergeRate) * rekeyBits * p.MeanHops

	return b
}
