package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gdh"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.PacketBits = 0 },
		func(p *Params) { p.StatusRate = -1 },
		func(p *Params) { p.GDHElementBits = 0 },
		func(p *Params) { p.MeanHops = 0.5 },
		func(p *Params) { p.MeanDegree = -1 },
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.LambdaQ = -0.1 },
	}
	for i, mut := range mutations {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGDHValuesMatchesGDHPackage(t *testing.T) {
	for n := 0; n <= 150; n++ {
		if got, want := gdhValues(n), float64(gdh.NumValues(n)); got != want {
			t.Fatalf("gdhValues(%d) = %v, gdh.NumValues = %v", n, got, want)
		}
	}
}

func TestEvaluateZeroForEmptyState(t *testing.T) {
	p := DefaultParams()
	for _, s := range []State{{GroupSize: 0, Groups: 1}, {GroupSize: 5, Groups: 0}} {
		if b := p.Evaluate(s); b.Total() != 0 {
			t.Errorf("empty state %+v cost %v, want 0", s, b.Total())
		}
	}
}

func TestComponentsNonNegativeProperty(t *testing.T) {
	p := DefaultParams()
	// Rates are folded into [0, 1) events/s — the physical range; rates
	// near 1e308 only probe float overflow, not the model.
	fold := func(x float64) float64 {
		x = math.Abs(x)
		if math.IsInf(x, 0) || math.IsNaN(x) {
			return 0.5
		}
		return x - math.Floor(x)
	}
	f := func(size, groups uint8, dr, er float64) bool {
		s := State{
			GroupSize:         int(size % 120),
			Groups:            int(groups % 5),
			DetectionRate:     fold(dr),
			EvictionRekeyRate: fold(er),
			PartitionRate:     0.001,
			MergeRate:         0.001,
		}
		b := p.Evaluate(s)
		return b.GC >= 0 && b.Status >= 0 && b.Rekey >= 0 && b.IDS >= 0 &&
			b.Beacon >= 0 && b.MP >= 0 && b.Total() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGCQuadraticInGroupSize(t *testing.T) {
	p := DefaultParams()
	b1 := p.Evaluate(State{GroupSize: 10, Groups: 1})
	b2 := p.Evaluate(State{GroupSize: 20, Groups: 1})
	// n(n-1): 90 vs 380.
	want := 380.0 / 90.0
	if got := b2.GC / b1.GC; math.Abs(got-want) > 1e-9 {
		t.Errorf("GC scaling = %v, want %v", got, want)
	}
}

func TestIDSCostGrowsWithMAndRate(t *testing.T) {
	p := DefaultParams()
	s := State{GroupSize: 100, Groups: 1, DetectionRate: 1.0 / 60}
	base := p.Evaluate(s).IDS
	if base <= 0 {
		t.Fatal("IDS cost zero with positive detection rate")
	}
	p2 := p
	p2.M = 9
	if got := p2.Evaluate(s).IDS; got <= base {
		t.Errorf("IDS cost with m=9 (%v) not above m=5 (%v)", got, base)
	}
	s2 := s
	s2.DetectionRate *= 3
	if got := p.Evaluate(s2).IDS; math.Abs(got-3*base) > 1e-9*base {
		t.Errorf("IDS cost not linear in detection rate: %v vs %v", got, 3*base)
	}
}

func TestIDSCostMCappedByPool(t *testing.T) {
	p := DefaultParams()
	p.M = 50
	small := State{GroupSize: 10, Groups: 1, DetectionRate: 1}
	// Pool is 9 < m: effective participation must cap at 9.
	got := p.Evaluate(small).IDS
	pCap := p
	pCap.M = 9
	want := pCap.Evaluate(small).IDS
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("pool-capped IDS cost %v, want %v", got, want)
	}
}

func TestRekeyIncludesEvictions(t *testing.T) {
	p := DefaultParams()
	s := State{GroupSize: 50, Groups: 1}
	base := p.Evaluate(s).Rekey
	s.EvictionRekeyRate = 1.0 / 600
	withEvict := p.Evaluate(s).Rekey
	if withEvict <= base {
		t.Errorf("eviction rekeys not accounted: %v vs %v", withEvict, base)
	}
}

func TestMPCostFollowsDynamicsRates(t *testing.T) {
	p := DefaultParams()
	s := State{GroupSize: 30, Groups: 2, PartitionRate: 0.001, MergeRate: 0.002}
	b := p.Evaluate(s)
	if b.MP <= 0 {
		t.Fatal("MP cost zero with nonzero dynamics")
	}
	s2 := s
	s2.PartitionRate, s2.MergeRate = 0.002, 0.004
	if got := p.Evaluate(s2).MP; math.Abs(got-2*b.MP) > 1e-9*b.MP {
		t.Errorf("MP not linear in event rates: %v vs %v", got, 2*b.MP)
	}
}

func TestGroupsMultiplyPerGroupComponents(t *testing.T) {
	p := DefaultParams()
	one := p.Evaluate(State{GroupSize: 20, Groups: 1, DetectionRate: 0.01})
	two := p.Evaluate(State{GroupSize: 20, Groups: 2, DetectionRate: 0.01})
	for name, pair := range map[string][2]float64{
		"GC":     {one.GC, two.GC},
		"Status": {one.Status, two.Status},
		"Rekey":  {one.Rekey, two.Rekey},
		"IDS":    {one.IDS, two.IDS},
		"Beacon": {one.Beacon, two.Beacon},
	} {
		if math.Abs(pair[1]-2*pair[0]) > 1e-9*math.Max(1, pair[0]) {
			t.Errorf("%s not doubled with two groups: %v vs %v", name, pair[1], 2*pair[0])
		}
	}
}

func TestBreakdownTotalIsSum(t *testing.T) {
	b := Breakdown{GC: 1, Status: 2, Rekey: 3, IDS: 4, Beacon: 5, MP: 6}
	if b.Total() != 21 {
		t.Errorf("Total = %v, want 21", b.Total())
	}
}

func TestMagnitudeSanityPaperScale(t *testing.T) {
	// With the paper's defaults (N=100, λq=1/min) Ĉtotal should land in
	// the 1e5-1e6 hop·bits/s band shown on Figure 3's axis.
	p := DefaultParams()
	b := p.Evaluate(State{
		GroupSize:     100,
		Groups:        1,
		DetectionRate: 1.0 / 60,
		PartitionRate: 1e-4,
		MergeRate:     1e-4,
	})
	total := b.Total()
	if total < 1e4 || total > 1e8 {
		t.Errorf("Ĉtotal = %v hop·bits/s, out of plausible band [1e4, 1e8]", total)
	}
}
