// Package persist stores the evaluation engine's result cache on disk, so
// a restarted process serves yesterday's sweeps from a warm cache instead
// of re-solving them. It owns only bytes and their integrity; cache
// semantics stay in internal/engine (SnapshotEntries / RestoreEntries).
//
// The file format is defensive by construction:
//
//	[8]byte  magic "REPROSNP"
//	uint32   format version (big endian)
//	uint32   schema length, then the engine.SchemaFingerprint bytes
//	uint64   payload length, then the gob-encoded []engine.SnapshotEntry
//	uint64   CRC-64/ECMA of the payload
//
// A snapshot whose schema fingerprint differs from the running process's —
// any change to core.Config, cost.Params, or core.Result, or a bump of the
// fingerprint contract itself — is rejected with ErrStaleSchema, never
// silently reused: its keys could alias different configurations under the
// new schema, and warm-loading them would serve wrong answers forever. A
// truncated or bit-flipped file fails the length or CRC checks with
// ErrCorrupt. Callers treat both as "boot cold", not as fatal.
//
// Saves are atomic (temp file in the same directory, fsync, rename), so a
// crash mid-checkpoint leaves the previous snapshot intact.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/faultinject"
)

var magic = [8]byte{'R', 'E', 'P', 'R', 'O', 'S', 'N', 'P'}

// formatVersion is the container-format version; bump on any layout change
// of the file itself (schema changes are caught by the fingerprint).
const formatVersion = 1

var (
	// ErrStaleSchema marks a structurally intact snapshot written under a
	// different fingerprint schema; it must be discarded, not loaded.
	ErrStaleSchema = errors.New("persist: snapshot schema is stale")
	// ErrCorrupt marks a snapshot that fails the structural or checksum
	// validation (truncation, bit flips, foreign files).
	ErrCorrupt = errors.New("persist: snapshot is corrupt")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Save writes entries as a snapshot at path, atomically replacing any
// previous file. The header records the running process's schema
// fingerprint, so only a schema-identical process will load it back.
func Save(path string, entries []engine.SnapshotEntry) error {
	return saveWithSchema(path, engine.SchemaFingerprint(), entries)
}

// saveWithSchema is Save with an explicit schema string; the stale-schema
// tests write deliberately mismatched files through it.
func saveWithSchema(path, schema string, entries []engine.SnapshotEntry) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(entries); err != nil {
		return fmt.Errorf("persist: encoding snapshot: %w", err)
	}

	var buf bytes.Buffer
	buf.Write(magic[:])
	binary.Write(&buf, binary.BigEndian, uint32(formatVersion))
	binary.Write(&buf, binary.BigEndian, uint32(len(schema)))
	buf.WriteString(schema)
	binary.Write(&buf, binary.BigEndian, uint64(payload.Len()))
	buf.Write(payload.Bytes())
	binary.Write(&buf, binary.BigEndian, crc64.Checksum(payload.Bytes(), crcTable))

	// Injected torn write: model the worst case the atomic tmp+rename path
	// is designed to prevent — a crash (or a filesystem without atomic
	// rename) leaving half a container at the published path. The recovery
	// story (generation rotation + WarmStartAuto fallback) must survive it.
	if faultinject.Fire(faultinject.PersistTorn) {
		torn := buf.Bytes()[:buf.Len()/2]
		os.WriteFile(path, torn, 0o644)
		return fmt.Errorf("persist: %w: injected torn write (%d of %d bytes) at %s",
			ErrCorrupt, len(torn), buf.Len(), path)
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if faultinject.Fire(faultinject.PersistFsync) {
		tmp.Close()
		return fmt.Errorf("persist: syncing snapshot: injected fsync failure")
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	return nil
}

// Load reads and validates the snapshot at path. It returns ErrStaleSchema
// for a snapshot written under a different fingerprint schema (or an
// incompatible container version) and ErrCorrupt for structural or
// checksum failures; both mean "discard and boot cold".
func Load(path string) ([]engine.SnapshotEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(data)

	var gotMagic [8]byte
	if _, err := io.ReadFull(r, gotMagic[:]); err != nil || gotMagic != magic {
		return nil, fmt.Errorf("%w: bad magic in %s", ErrCorrupt, path)
	}
	var version uint32
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: truncated header in %s", ErrCorrupt, path)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("%w: %s has container version %d, this build reads %d",
			ErrStaleSchema, path, version, formatVersion)
	}
	var schemaLen uint32
	if err := binary.Read(r, binary.BigEndian, &schemaLen); err != nil || int64(schemaLen) > int64(r.Len()) {
		return nil, fmt.Errorf("%w: truncated schema in %s", ErrCorrupt, path)
	}
	schema := make([]byte, schemaLen)
	if _, err := io.ReadFull(r, schema); err != nil {
		return nil, fmt.Errorf("%w: truncated schema in %s", ErrCorrupt, path)
	}
	if want := engine.SchemaFingerprint(); string(schema) != want {
		return nil, fmt.Errorf("%w: %s was written under schema %q, this build uses %q",
			ErrStaleSchema, path, schema, want)
	}
	var payloadLen uint64
	if err := binary.Read(r, binary.BigEndian, &payloadLen); err != nil || payloadLen > uint64(r.Len()) {
		return nil, fmt.Errorf("%w: truncated payload in %s", ErrCorrupt, path)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload in %s", ErrCorrupt, path)
	}
	var sum uint64
	if err := binary.Read(r, binary.BigEndian, &sum); err != nil {
		return nil, fmt.Errorf("%w: missing checksum in %s", ErrCorrupt, path)
	}
	if got := crc64.Checksum(payload, crcTable); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch in %s (stored %016x, computed %016x)",
			ErrCorrupt, path, sum, got)
	}

	var entries []engine.SnapshotEntry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&entries); err != nil {
		return nil, fmt.Errorf("%w: undecodable payload in %s: %v", ErrCorrupt, path, err)
	}
	return entries, nil
}

// SaveEngine snapshots e's result cache to path.
func SaveEngine(e *engine.Engine, path string) error {
	return Save(path, e.SnapshotEntries())
}

// prevSuffix names the previous snapshot generation next to the current
// one. Two generations is the whole rotation scheme: enough that one torn
// or corrupted current file never costs the warm cache, cheap enough that
// nothing needs garbage collection.
const prevSuffix = ".prev"

// PrevPath returns the previous-generation path for a snapshot at path.
func PrevPath(path string) string { return path + prevSuffix }

// SaveRotating writes entries at path after first rotating any existing
// snapshot to PrevPath(path). If the new write fails — including a torn
// write that leaves garbage at path — the previous generation survives
// intact for WarmStartAuto to fall back to. The rotation itself is a
// same-directory rename, atomic on POSIX filesystems.
func SaveRotating(path string, entries []engine.SnapshotEntry) error {
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, PrevPath(path)); err != nil {
			return fmt.Errorf("persist: rotating snapshot generation: %w", err)
		}
	}
	return Save(path, entries)
}

// WarmStartAuto loads the freshest valid snapshot generation into e: the
// current file at path first, then PrevPath(path) if the current one is
// missing, torn, corrupt, or stale. It returns the entries admitted and
// which generation served them ("current", "previous", or "" for a cold
// boot). The error is non-nil only when a snapshot existed but no
// generation could be loaded; a fallback that succeeds is not an error —
// the reason the current generation was skipped is reported through logf
// (which may be nil) so operators can see the degraded load without
// treating it as a cold boot.
func WarmStartAuto(e *engine.Engine, path string, logf func(format string, args ...any)) (int, string, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	entries, err := Load(path)
	if err == nil {
		return e.RestoreEntries(entries), "current", nil
	}
	currentMissing := errors.Is(err, os.ErrNotExist)
	if !currentMissing {
		logf("persist: current snapshot unusable (%v); trying previous generation", err)
	}
	prev, perr := Load(PrevPath(path))
	if perr == nil {
		return e.RestoreEntries(prev), "previous", nil
	}
	if errors.Is(perr, os.ErrNotExist) {
		if currentMissing {
			return 0, "", nil // genuine cold boot: no snapshot was ever written
		}
		return 0, "", err // current bad, no previous to fall back to
	}
	if currentMissing {
		return 0, "", perr
	}
	return 0, "", fmt.Errorf("%w (previous generation also unusable: %v)", err, perr)
}

// WarmStart loads the snapshot at path into e's result cache and returns
// how many entries were admitted. A missing file is a normal cold boot
// (0, nil). A stale or corrupt snapshot returns its error with the engine
// untouched — the caller logs it and boots cold; it must not be fatal,
// since the snapshot is an optimization, not state of record.
func WarmStart(e *engine.Engine, path string) (int, error) {
	entries, err := Load(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return e.RestoreEntries(entries), nil
}
