package persist

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// testConfig returns a small, fast configuration.
func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.N = 12
	return cfg
}

var testGrid = []float64{30, 60, 120}

// populate evaluates the test grid on a fresh engine and returns both.
func populate(t *testing.T) (*engine.Engine, map[float64]*core.Result) {
	t.Helper()
	e := engine.New(engine.Options{})
	want := make(map[float64]*core.Result, len(testGrid))
	for _, tids := range testGrid {
		cfg := testConfig()
		cfg.TIDS = tids
		res, err := e.Eval(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[tids] = res
	}
	return e, want
}

// TestFileRoundTrip is the acceptance test for cache persistence: save a
// populated engine, load the file into a fresh engine (a simulated
// restart), and replay the sweep grid — a 100% hit rate, zero new solves,
// and Results identical to 1e-12 (they are in fact bit-identical, since
// the snapshot stores the solved values verbatim).
func TestFileRoundTrip(t *testing.T) {
	e1, want := populate(t)
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := SaveEngine(e1, path); err != nil {
		t.Fatal(err)
	}

	e2 := engine.New(engine.Options{})
	n, err := WarmStart(e2, path)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(testGrid) {
		t.Fatalf("warm start restored %d entries, want %d", n, len(testGrid))
	}
	for _, tids := range testGrid {
		cfg := testConfig()
		cfg.TIDS = tids
		res, err := e2.Eval(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []struct {
			name      string
			got, want float64
		}{
			{"MTTSF", res.MTTSF, want[tids].MTTSF},
			{"Ctotal", res.Ctotal, want[tids].Ctotal},
			{"ProbC1", res.ProbC1, want[tids].ProbC1},
			{"ProbC2", res.ProbC2, want[tids].ProbC2},
		} {
			denom := math.Max(math.Abs(v.want), 1)
			if math.Abs(v.got-v.want)/denom > 1e-12 {
				t.Errorf("TIDS=%v %s: restored %v, original %v", tids, v.name, v.got, v.want)
			}
		}
	}
	st := e2.Stats()
	if st.Evals != 0 || st.Misses != 0 || st.Hits != uint64(len(testGrid)) {
		t.Fatalf("replayed sweep on restored engine: %+v, want a 100%% hit rate with 0 evals", st)
	}
}

// TestWarmStartMissingFile pins that a first boot (no snapshot yet) is a
// normal cold start, not an error.
func TestWarmStartMissingFile(t *testing.T) {
	e := engine.New(engine.Options{})
	n, err := WarmStart(e, filepath.Join(t.TempDir(), "never-written.snap"))
	if err != nil || n != 0 {
		t.Fatalf("WarmStart on missing file = (%d, %v), want (0, nil)", n, err)
	}
}

// TestTruncatedSnapshotRejected cuts a valid snapshot at every region
// boundary (and mid-payload); each truncation must surface ErrCorrupt and
// leave the engine cold.
func TestTruncatedSnapshotRejected(t *testing.T) {
	e1, _ := populate(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	if err := SaveEngine(e1, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 8, 11, 20, len(data) / 2, len(data) - 3} {
		trunc := filepath.Join(dir, "trunc.snap")
		if err := os.WriteFile(trunc, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		e := engine.New(engine.Options{})
		n, err := WarmStart(e, trunc)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at %d bytes: err = %v, want ErrCorrupt", cut, err)
		}
		if n != 0 || e.Stats().Entries != 0 {
			t.Errorf("truncation at %d bytes: engine not cold (%d restored)", cut, n)
		}
	}
}

// TestCorruptedSnapshotRejected flips one payload bit; the checksum must
// catch it.
func TestCorruptedSnapshotRejected(t *testing.T) {
	e1, _ := populate(t)
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := SaveEngine(e1, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-20] ^= 0x40 // inside the payload (the trailing 8 bytes are the checksum)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped snapshot loaded: err = %v, want ErrCorrupt", err)
	}
}

// TestStaleSchemaRejected is the acceptance test for schema pinning: a
// structurally valid snapshot written under a different fingerprint schema
// (here a fabricated one; in life, a build whose core.Config changed) must
// be rejected with ErrStaleSchema — never silently reused — and the engine
// must boot cold.
func TestStaleSchemaRejected(t *testing.T) {
	e1, _ := populate(t)
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := saveWithSchema(path, "v0:0123456789abcdef", e1.SnapshotEntries()); err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(engine.Options{})
	n, err := WarmStart(e2, path)
	if !errors.Is(err, ErrStaleSchema) {
		t.Fatalf("stale-schema snapshot: err = %v, want ErrStaleSchema", err)
	}
	if n != 0 || e2.Stats().Entries != 0 {
		t.Fatalf("stale-schema snapshot warmed the engine (%d entries)", n)
	}
}

// TestForeignFileRejected pins that an arbitrary file is ErrCorrupt, not a
// crash.
func TestForeignFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notasnap")
	if err := os.WriteFile(path, []byte("this is not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign file loaded: err = %v, want ErrCorrupt", err)
	}
}

// TestSaveIsAtomic pins that a failed save cannot destroy the previous
// snapshot: after overwriting with new content, the file always parses.
func TestSaveIsAtomic(t *testing.T) {
	e1, _ := populate(t)
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := SaveEngine(e1, path); err != nil {
		t.Fatal(err)
	}
	// A second save over the same path must leave a loadable file and no
	// temp litter.
	if err := SaveEngine(e1, path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	glob, _ := filepath.Glob(filepath.Join(filepath.Dir(path), "*.tmp-*"))
	if len(glob) != 0 {
		t.Fatalf("temp files left behind: %v", glob)
	}
}

// TestCheckpointerFinalSave pins the shutdown contract: Stop writes the
// final snapshot (even when no periodic tick ever fired) and is
// idempotent.
func TestCheckpointerFinalSave(t *testing.T) {
	e, _ := populate(t)
	path := filepath.Join(t.TempDir(), "cache.snap")
	c := NewCheckpointer(e, path, time.Hour)
	c.Start(func(err error) { t.Errorf("checkpoint error: %v", err) })
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); err != nil { // idempotent
		t.Fatal(err)
	}
	entries, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(testGrid) {
		t.Fatalf("final checkpoint holds %d entries, want %d", len(entries), len(testGrid))
	}
}
