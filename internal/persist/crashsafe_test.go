package persist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faultinject"
)

// warmEngine evaluates n distinct configurations so the cache has content
// worth snapshotting.
func warmEngine(t *testing.T, n int) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Options{})
	cfg := core.DefaultConfig()
	for i := 0; i < n; i++ {
		cfg.N = 10 + i
		if _, err := e.Eval(cfg); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestSaveRotatingKeepsPreviousGeneration pins the rotation scheme: after
// two saves, the previous generation is intact and loadable on its own.
func TestSaveRotatingKeepsPreviousGeneration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap")
	e := warmEngine(t, 2)
	gen1 := e.SnapshotEntries()[:1]
	gen2 := e.SnapshotEntries()

	if err := SaveRotating(path, gen1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(PrevPath(path)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("previous generation exists after first save: %v", err)
	}
	if err := SaveRotating(path, gen2); err != nil {
		t.Fatal(err)
	}
	cur, err := Load(path)
	if err != nil {
		t.Fatalf("current generation: %v", err)
	}
	prev, err := Load(PrevPath(path))
	if err != nil {
		t.Fatalf("previous generation: %v", err)
	}
	if len(cur) != 2 || len(prev) != 1 {
		t.Errorf("generations hold %d/%d entries, want 2/1", len(cur), len(prev))
	}
}

// TestTornWriteWarmBootsFromPrevious is the crash-safety acceptance proof
// at the persist layer: a snapshot torn mid-write (injected) must leave
// the process able to warm-boot from the previous generation with every
// entry intact — never a cold boot.
func TestTornWriteWarmBootsFromPrevious(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	path := filepath.Join(t.TempDir(), "snap")
	const points = 4
	e := warmEngine(t, points)

	if err := SaveRotating(path, e.SnapshotEntries()); err != nil {
		t.Fatal(err)
	}
	// Second save tears mid-write: the current path now holds half a
	// container, the first save has been rotated to .prev.
	faultinject.Enable(faultinject.Plan{Seed: 1, Rates: map[string]float64{faultinject.PersistTorn: 1}})
	err := SaveRotating(path, e.SnapshotEntries())
	faultinject.Disable()
	if err == nil {
		t.Fatal("torn save reported success")
	}
	if _, lerr := Load(path); !errors.Is(lerr, ErrCorrupt) {
		t.Fatalf("torn current generation: Load err = %v, want ErrCorrupt", lerr)
	}

	var logged []string
	fresh := engine.New(engine.Options{})
	n, gen, err := WarmStartAuto(fresh, path, func(format string, args ...any) {
		logged = append(logged, format)
	})
	if err != nil {
		t.Fatalf("WarmStartAuto: %v", err)
	}
	if gen != "previous" {
		t.Fatalf("loaded generation %q, want \"previous\"", gen)
	}
	if n != points {
		t.Errorf("admitted %d entries from previous generation, want %d", n, points)
	}
	if len(logged) == 0 {
		t.Error("fallback to previous generation was not logged")
	}
	// Warm means warm: every pre-crash point is a cache hit.
	cfg := core.DefaultConfig()
	for i := 0; i < points; i++ {
		cfg.N = 10 + i
		if _, ok := fresh.Cached(cfg); !ok {
			t.Errorf("point N=%d missing after warm boot from previous generation", cfg.N)
		}
	}
}

// TestWarmStartAutoGenerations covers the remaining load matrix: clean
// current, cold boot, and both generations bad.
func TestWarmStartAutoGenerations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap")
	e := warmEngine(t, 1)

	// Cold boot: neither generation exists.
	n, gen, err := WarmStartAuto(engine.New(engine.Options{}), path, t.Logf)
	if n != 0 || gen != "" || err != nil {
		t.Fatalf("cold boot: (%d, %q, %v), want (0, \"\", nil)", n, gen, err)
	}

	// Clean current generation loads as "current".
	if err := SaveRotating(path, e.SnapshotEntries()); err != nil {
		t.Fatal(err)
	}
	n, gen, err = WarmStartAuto(engine.New(engine.Options{}), path, t.Logf)
	if n != 1 || gen != "current" || err != nil {
		t.Fatalf("clean boot: (%d, %q, %v), want (1, \"current\", nil)", n, gen, err)
	}

	// Both generations corrupt: error, no silent cold boot.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(PrevPath(path), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = WarmStartAuto(engine.New(engine.Options{}), path, t.Logf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("both generations corrupt: err = %v, want ErrCorrupt", err)
	}
}

// TestFsyncFailureLeavesCurrentIntact pins the injected fsync site: the
// publish never happens, so the rotated previous generation still loads.
func TestFsyncFailureLeavesCurrentIntact(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	path := filepath.Join(t.TempDir(), "snap")
	e := warmEngine(t, 1)

	if err := SaveRotating(path, e.SnapshotEntries()); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.Plan{Seed: 1, Rates: map[string]float64{faultinject.PersistFsync: 1}})
	err := SaveRotating(path, e.SnapshotEntries())
	faultinject.Disable()
	if err == nil || !strings.Contains(err.Error(), "fsync") {
		t.Fatalf("err = %v, want injected fsync failure", err)
	}
	// The failed save rotated current -> .prev and published nothing new.
	n, gen, err := WarmStartAuto(engine.New(engine.Options{}), path, t.Logf)
	if err != nil || gen != "previous" || n != 1 {
		t.Fatalf("after fsync failure: (%d, %q, %v), want (1, \"previous\", nil)", n, gen, err)
	}
}

// TestCheckpointerBackoffAndStatus drives the checkpointer's save path
// directly (forced saves bypass tick backoff, so the backoff state is
// asserted through Status): failures accumulate with exponential skip
// budget, success resets everything.
func TestCheckpointerBackoffAndStatus(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	path := filepath.Join(t.TempDir(), "snap")
	e := warmEngine(t, 1)
	c := NewCheckpointer(e, path, time.Hour)

	faultinject.Enable(faultinject.Plan{Seed: 1, Rates: map[string]float64{faultinject.PersistFsync: 1}})
	for i := 0; i < 3; i++ {
		if err := c.Save(); err == nil {
			t.Fatal("save succeeded under forced fsync failure")
		}
	}
	st := c.Status()
	if st.ConsecutiveFailures != 3 || st.SavesFailed != 3 || st.LastError == "" {
		t.Fatalf("after 3 failures: %+v", st)
	}
	if st.LastErrorTime.IsZero() {
		t.Error("LastErrorTime not stamped")
	}
	// Backoff skip budget after 3 consecutive failures is 2^3-1 ticks.
	for i := 0; i < 7; i++ {
		if !c.skipThisTick() {
			t.Fatalf("tick %d not skipped; backoff budget too small", i)
		}
	}
	if c.skipThisTick() {
		t.Error("backoff budget larger than 2^failures-1")
	}

	faultinject.Disable()
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	st = c.Status()
	if st.ConsecutiveFailures != 0 || st.LastError != "" || st.SavesOK != 1 {
		t.Fatalf("after recovery: %+v", st)
	}
	if st.LastSuccess.IsZero() {
		t.Error("LastSuccess not stamped")
	}
	if c.skipThisTick() {
		t.Error("backoff not cleared by success")
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
}
