package persist

import (
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// Checkpointer periodically snapshots an engine's result cache to disk and
// performs one final snapshot on Stop — the shutdown hook cmd/server wires
// to SIGTERM, so a drained server leaves a warm cache behind for the next
// boot. Saves are skipped while the cache contents are unchanged (same
// eval/eviction counters), keeping an idle server from rewriting an
// identical file every interval.
type Checkpointer struct {
	engine   *engine.Engine
	path     string
	interval time.Duration

	// Logf, when set, receives one line per completed save reporting the
	// compaction effect: how many live entries were written and the
	// snapshot's size before and after the rewrite. Saves rebuild the file
	// from the engine's live LRU contents, so entries evicted since the
	// previous save are dropped from disk rather than accreted.
	Logf func(format string, args ...any)

	mu        sync.Mutex // serializes saves; guards lastStamp
	lastStamp [2]uint64  // (Evals, Evictions) at the last successful save

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewCheckpointer builds a checkpointer writing e's cache to path every
// interval (minimum 1s; zero or negative selects 5 minutes). Call Start to
// begin the periodic loop and Stop for the final flush.
func NewCheckpointer(e *engine.Engine, path string, interval time.Duration) *Checkpointer {
	if interval <= 0 {
		interval = 5 * time.Minute
	}
	if interval < time.Second {
		interval = time.Second
	}
	return &Checkpointer{
		engine:   e,
		path:     path,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the periodic checkpoint loop (at most once). Save errors
// are reported through onError (which may be nil) and do not stop the
// loop — a full disk at one tick should not forfeit the final shutdown
// snapshot.
func (c *Checkpointer) Start(onError func(error)) {
	if c.started.Swap(true) {
		return
	}
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(c.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := c.save(false); err != nil && onError != nil {
					onError(err)
				}
			case <-c.stop:
				return
			}
		}
	}()
}

// Stop halts the periodic loop (if Start ever ran) and writes one final
// snapshot, returning the final save's error. It is idempotent; only the
// first call saves. Safe to call without Start.
func (c *Checkpointer) Stop() error {
	var err error
	c.stopOnce.Do(func() {
		close(c.stop)
		if c.started.Load() {
			<-c.done
		}
		err = c.save(true)
	})
	return err
}

// Save forces an immediate snapshot regardless of staleness tracking.
func (c *Checkpointer) Save() error { return c.save(true) }

// save snapshots the cache; unless forced, an unchanged cache (same eval
// and eviction counters as the last successful save) is skipped. Each save
// rewrites the snapshot from the live LRU entries — a compaction, not an
// append — and reports the size delta through Logf when one is set.
func (c *Checkpointer) save(force bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.engine.Stats()
	stamp := [2]uint64{st.Evals, st.Evictions}
	if !force && stamp == c.lastStamp {
		return nil
	}
	var before int64
	if fi, err := os.Stat(c.path); err == nil {
		before = fi.Size()
	}
	entries := c.engine.SnapshotEntries()
	if err := Save(c.path, entries); err != nil {
		return err
	}
	if c.Logf != nil {
		var after int64
		if fi, err := os.Stat(c.path); err == nil {
			after = fi.Size()
		}
		c.Logf("checkpoint: compacted snapshot to %d live entries, %d -> %d bytes", len(entries), before, after)
	}
	c.lastStamp = stamp
	return nil
}
