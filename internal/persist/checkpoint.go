package persist

import (
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// Checkpointer periodically snapshots an engine's result cache to disk and
// performs one final snapshot on Stop — the shutdown hook cmd/server wires
// to SIGTERM, so a drained server leaves a warm cache behind for the next
// boot. Saves are skipped while the cache contents are unchanged (same
// eval/eviction counters), keeping an idle server from rewriting an
// identical file every interval.
//
// Saves rotate generations (SaveRotating): the previous snapshot moves to
// PrevPath before the new one is published, so a save that dies mid-write
// can never cost more than one interval of cache warmth. Consecutive save
// failures back off exponentially — a full disk at every tick should not
// spin the write path — and the failure state is visible through Status so
// the serving layer can report it on /v1/stats and /healthz.
type Checkpointer struct {
	engine   *engine.Engine
	path     string
	interval time.Duration

	// Logf, when set, receives one line per completed save reporting the
	// compaction effect: how many live entries were written and the
	// snapshot's size before and after the rewrite. Saves rebuild the file
	// from the engine's live LRU contents, so entries evicted since the
	// previous save are dropped from disk rather than accreted.
	Logf func(format string, args ...any)

	mu        sync.Mutex // serializes saves; guards lastStamp and status
	lastStamp [2]uint64  // (Evals, Evictions) at the last successful save

	// Backoff and health, guarded by mu. skipTicks counts interval ticks
	// the loop will skip before the next attempt; it doubles (capped) with
	// each consecutive failure and resets on success. Forced saves (Save,
	// Stop) always attempt regardless.
	failures    int
	skipTicks   int
	lastSuccess time.Time
	lastErr     error
	lastErrTime time.Time
	savesOK     uint64
	savesFailed uint64

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// CheckpointStatus is a point-in-time health report of the checkpoint
// loop, consumed by the serving layer for /v1/stats and /healthz.
type CheckpointStatus struct {
	// LastSuccess is the last time the on-disk snapshot was known current
	// (a completed save, or a tick that verified the cache unchanged).
	// Zero until the first successful save.
	LastSuccess time.Time
	// LastError is the most recent save failure ("" when the last attempt
	// succeeded); LastErrorTime is when it happened.
	LastError     string
	LastErrorTime time.Time
	// ConsecutiveFailures counts failed attempts since the last success;
	// the periodic loop is currently backing off when it is non-zero.
	ConsecutiveFailures int
	SavesOK             uint64
	SavesFailed         uint64
}

// backoffCap bounds the exponential backoff at 64 skipped intervals
// between attempts — persistent failure still gets probed, just not every
// tick.
const backoffCap = 6

// NewCheckpointer builds a checkpointer writing e's cache to path every
// interval (minimum 1s; zero or negative selects 5 minutes). Call Start to
// begin the periodic loop and Stop for the final flush.
func NewCheckpointer(e *engine.Engine, path string, interval time.Duration) *Checkpointer {
	if interval <= 0 {
		interval = 5 * time.Minute
	}
	if interval < time.Second {
		interval = time.Second
	}
	return &Checkpointer{
		engine:   e,
		path:     path,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the periodic checkpoint loop (at most once). Save errors
// are reported through onError (which may be nil) and do not stop the
// loop — a full disk at one tick should not forfeit the final shutdown
// snapshot.
func (c *Checkpointer) Start(onError func(error)) {
	if c.started.Swap(true) {
		return
	}
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(c.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if c.skipThisTick() {
					continue
				}
				if err := c.save(false); err != nil && onError != nil {
					onError(err)
				}
			case <-c.stop:
				return
			}
		}
	}()
}

// skipThisTick consumes one backoff tick, reporting whether the periodic
// loop should sit this interval out.
func (c *Checkpointer) skipThisTick() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.skipTicks > 0 {
		c.skipTicks--
		return true
	}
	return false
}

// Stop halts the periodic loop (if Start ever ran) and writes one final
// snapshot, returning the final save's error. It is idempotent; only the
// first call saves. Safe to call without Start.
func (c *Checkpointer) Stop() error {
	var err error
	c.stopOnce.Do(func() {
		close(c.stop)
		if c.started.Load() {
			<-c.done
		}
		err = c.save(true)
	})
	return err
}

// Save forces an immediate snapshot regardless of staleness tracking and
// backoff.
func (c *Checkpointer) Save() error { return c.save(true) }

// Status reports the checkpoint loop's current health.
func (c *Checkpointer) Status() CheckpointStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CheckpointStatus{
		LastSuccess:         c.lastSuccess,
		LastErrorTime:       c.lastErrTime,
		ConsecutiveFailures: c.failures,
		SavesOK:             c.savesOK,
		SavesFailed:         c.savesFailed,
	}
	if c.lastErr != nil {
		st.LastError = c.lastErr.Error()
	}
	return st
}

// save snapshots the cache; unless forced, an unchanged cache (same eval
// and eviction counters as the last successful save) is skipped — and
// counted as a success for freshness, since the on-disk snapshot is
// verifiably current. Each save rotates generations and rewrites the
// snapshot from the live LRU entries — a compaction, not an append — and
// reports the size delta through Logf when one is set.
func (c *Checkpointer) save(force bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.engine.Stats()
	stamp := [2]uint64{st.Evals, st.Evictions}
	if !force && stamp == c.lastStamp {
		c.noteSuccess()
		return nil
	}
	var before int64
	if fi, err := os.Stat(c.path); err == nil {
		before = fi.Size()
	}
	entries := c.engine.SnapshotEntries()
	if err := SaveRotating(c.path, entries); err != nil {
		c.noteFailure(err)
		return err
	}
	if c.Logf != nil {
		var after int64
		if fi, err := os.Stat(c.path); err == nil {
			after = fi.Size()
		}
		c.Logf("checkpoint: compacted snapshot to %d live entries, %d -> %d bytes", len(entries), before, after)
	}
	c.lastStamp = stamp
	c.noteSuccess()
	c.savesOK++
	return nil
}

// noteSuccess and noteFailure maintain the backoff and health state;
// callers hold mu.
func (c *Checkpointer) noteSuccess() {
	c.failures = 0
	c.skipTicks = 0
	c.lastErr = nil
	c.lastSuccess = time.Now()
}

func (c *Checkpointer) noteFailure(err error) {
	c.failures++
	c.skipTicks = 1<<min(c.failures, backoffCap) - 1
	c.lastErr = err
	c.lastErrTime = time.Now()
	c.savesFailed++
}
