package persist

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestCheckpointerCompaction pins the compaction satellite: each save
// rewrites the snapshot from the engine's live LRU entries (evicted
// entries are dropped from disk, not accreted), and Logf receives the
// entry count with the size-before/after line.
func TestCheckpointerCompaction(t *testing.T) {
	// A 1-entry result cache: each new point evicts the previous one, so
	// the live set stays at one entry no matter how many were evaluated.
	big, _ := populate(t)
	small := newBoundedEngine(t)

	path := filepath.Join(t.TempDir(), "cache.snap")
	c := NewCheckpointer(big, path, time.Hour)
	var lines []string
	c.Logf = func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "live entries") {
		t.Fatalf("expected one compaction log line, got %q", lines)
	}
	entries, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(testGrid) {
		t.Fatalf("snapshot holds %d entries, want %d", len(entries), len(testGrid))
	}

	// Re-point the same file at the heavily evicted engine: the rewrite
	// must shrink the snapshot to the single live entry.
	c2 := NewCheckpointer(small, path, time.Hour)
	c2.Logf = c.Logf
	if err := c2.Save(); err != nil {
		t.Fatal(err)
	}
	entries, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("compacted snapshot holds %d entries, want 1 (live LRU size)", len(entries))
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, "1 live entries") {
		t.Fatalf("compaction line does not report the live entry count: %q", last)
	}
}

// newBoundedEngine evaluates the test grid through a 1-entry result cache,
// leaving exactly one live entry behind.
func newBoundedEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Options{CacheSize: 1})
	for _, tids := range testGrid {
		cfg := testConfig()
		cfg.TIDS = tids
		if _, err := e.Eval(cfg); err != nil {
			t.Fatal(err)
		}
	}
	return e
}
