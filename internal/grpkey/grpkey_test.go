package grpkey

import (
	"bytes"
	"math/big"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	k, err := Derive(big.NewInt(123456789), 1)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("coordinates 38.88,-77.01 at 0400Z")
	aad := []byte("sender=7")
	env, err := k.Seal(nil, msg, aad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Open(env, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestWrongEpochRefused(t *testing.T) {
	secret := big.NewInt(42424242)
	k1, err := Derive(secret, 1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Derive(secret, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := k1.Seal(nil, []byte("old epoch"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k2.Open(env, nil); err != ErrWrongEpoch {
		t.Fatalf("cross-epoch open returned %v, want ErrWrongEpoch", err)
	}
}

func TestEpochsDeriveDistinctKeys(t *testing.T) {
	// Same GDH secret, different epochs: ciphertext of epoch 1 must not
	// decrypt under epoch 2's key even when the epoch field is forged.
	secret := big.NewInt(42424242)
	k1, _ := Derive(secret, 1)
	k2, _ := Derive(secret, 2)
	env, err := k1.Seal(nil, []byte("payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	env.Epoch = 2 // forge the epoch tag
	if _, err := k2.Open(env, nil); err != ErrDecrypt {
		t.Fatalf("forged-epoch open returned %v, want ErrDecrypt", err)
	}
}

func TestDifferentSecretsCannotDecrypt(t *testing.T) {
	kA, _ := Derive(big.NewInt(1111), 5)
	kB, _ := Derive(big.NewInt(2222), 5)
	env, err := kA.Seal(nil, []byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kB.Open(env, nil); err != ErrDecrypt {
		t.Fatalf("outsider decryption returned %v, want ErrDecrypt", err)
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	k, _ := Derive(big.NewInt(99), 1)
	env, err := k.Seal(nil, []byte("integrity matters"), nil)
	if err != nil {
		t.Fatal(err)
	}
	env.Ciphertext[0] ^= 0x01
	if _, err := k.Open(env, nil); err != ErrDecrypt {
		t.Fatalf("tampered ciphertext returned %v, want ErrDecrypt", err)
	}
}

func TestAADBinding(t *testing.T) {
	k, _ := Derive(big.NewInt(99), 1)
	env, err := k.Seal(nil, []byte("msg"), []byte("sender=1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Open(env, []byte("sender=2")); err != ErrDecrypt {
		t.Fatalf("AAD substitution returned %v, want ErrDecrypt", err)
	}
}

func TestNoncesFresh(t *testing.T) {
	k, _ := Derive(big.NewInt(99), 1)
	a, err := k.Seal(nil, []byte("x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Seal(nil, []byte("x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Nonce, b.Nonce) {
		t.Fatal("nonce reuse across seals")
	}
	if bytes.Equal(a.Ciphertext, b.Ciphertext) {
		t.Fatal("identical ciphertexts for identical plaintexts")
	}
}

func TestDeriveValidation(t *testing.T) {
	if _, err := Derive(nil, 1); err == nil {
		t.Error("nil secret accepted")
	}
	if _, err := Derive(big.NewInt(0), 1); err == nil {
		t.Error("zero secret accepted")
	}
	if _, err := Derive(big.NewInt(-5), 1); err == nil {
		t.Error("negative secret accepted")
	}
}

func TestOpenBadNonceLength(t *testing.T) {
	k, _ := Derive(big.NewInt(99), 1)
	env, _ := k.Seal(nil, []byte("x"), nil)
	env.Nonce = env.Nonce[:4]
	if _, err := k.Open(env, nil); err != ErrDecrypt {
		t.Fatalf("short nonce returned %v, want ErrDecrypt", err)
	}
}
