// Package grpkey turns the contributory GDH group secret into usable
// symmetric group keys and enforces the paper's confidentiality property:
// "group members employ the group key to encrypt group messages. By
// employing the group key as a secret key, only members of the group are
// able to decrypt and read group messages" (Section 2.1).
//
// Keys are bound to a rekey epoch. Because every membership change runs a
// fresh GDH agreement, an evicted or departed member holds only old-epoch
// keys (forward secrecy) and a joiner holds only new-epoch keys (backward
// secrecy); both properties are exercised by the integration tests in
// package secgroup.
package grpkey

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Errors returned by Open.
var (
	// ErrWrongEpoch marks an envelope sealed under a different key epoch.
	ErrWrongEpoch = errors.New("grpkey: envelope from a different key epoch")
	// ErrDecrypt marks an authentication/decryption failure.
	ErrDecrypt = errors.New("grpkey: decryption failed")
)

// EpochKey is the symmetric group key of one rekey epoch.
type EpochKey struct {
	Epoch uint64
	aead  cipher.AEAD
}

// Derive produces the epoch key from the GDH group secret: the AES-256 key
// is SHA-256("repro-gcs-v1" || epoch || secret bytes), the standard
// extract-then-bind construction so distinct epochs never share a cipher
// key even if GDH produced the same group element.
func Derive(groupSecret *big.Int, epoch uint64) (*EpochKey, error) {
	if groupSecret == nil || groupSecret.Sign() <= 0 {
		return nil, fmt.Errorf("grpkey: invalid group secret")
	}
	h := sha256.New()
	h.Write([]byte("repro-gcs-v1"))
	var eb [8]byte
	binary.BigEndian.PutUint64(eb[:], epoch)
	h.Write(eb[:])
	h.Write(groupSecret.Bytes())
	key := h.Sum(nil)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("grpkey: building cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("grpkey: building GCM: %w", err)
	}
	return &EpochKey{Epoch: epoch, aead: aead}, nil
}

// Envelope is one encrypted group message.
type Envelope struct {
	Epoch      uint64
	Nonce      []byte
	Ciphertext []byte // includes the GCM tag
}

// Seal encrypts a group message under this epoch's key. aad (optional)
// binds cleartext context such as the sender ID.
func (k *EpochKey) Seal(rng io.Reader, plaintext, aad []byte) (Envelope, error) {
	if rng == nil {
		rng = rand.Reader
	}
	nonce := make([]byte, k.aead.NonceSize())
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return Envelope{}, fmt.Errorf("grpkey: drawing nonce: %w", err)
	}
	return Envelope{
		Epoch:      k.Epoch,
		Nonce:      nonce,
		Ciphertext: k.aead.Seal(nil, nonce, plaintext, aad),
	}, nil
}

// Open decrypts an envelope sealed under this epoch's key with matching
// aad. Envelopes from other epochs are refused before any cryptography
// runs, so callers can distinguish stale traffic from tampering.
func (k *EpochKey) Open(e Envelope, aad []byte) ([]byte, error) {
	if e.Epoch != k.Epoch {
		return nil, ErrWrongEpoch
	}
	if len(e.Nonce) != k.aead.NonceSize() {
		return nil, ErrDecrypt
	}
	pt, err := k.aead.Open(nil, e.Nonce, e.Ciphertext, aad)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}
