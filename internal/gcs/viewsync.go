package gcs

import (
	"fmt"
	"sort"
)

// Message is a group message stamped with the view it was sent in and a
// view-local sequence number assigned by the total-order layer.
type Message struct {
	ViewID  uint64
	Seq     uint64
	Sender  int
	Payload string
}

// Delivery is a message delivered to one member.
type Delivery struct {
	Member int
	Msg    Message
}

// ViewSync is a simulation-grade view-synchronous total-order multicast
// layer: messages sent within a view are delivered to every member of that
// view, in the same total order, before the next view is installed. It
// models the VS guarantee the paper assumes ("messages are guaranteed to be
// delivered reliably and in order") without a network: ordering is
// sequenced centrally, as a token-based or sequencer-based VS stack would.
type ViewSync struct {
	group   *Group
	nextSeq uint64
	pending []Message
	log     []Delivery
	// delivered[member] = count of messages delivered, for the
	// same-order invariant checks in tests.
	delivered map[int][]Message
}

// NewViewSync attaches a VS layer to a group.
func NewViewSync(g *Group) *ViewSync {
	return &ViewSync{group: g, delivered: make(map[int][]Message)}
}

// Send multicasts a payload from an active member within the current view.
// The message is sequenced immediately and buffered until Flush.
func (v *ViewSync) Send(sender int, payload string) (Message, error) {
	st, ok := v.group.Status(sender)
	if !ok || (st != StatusTrusted && st != StatusCompromised) {
		return Message{}, fmt.Errorf("gcs: sender %d is not an active member", sender)
	}
	v.nextSeq++
	m := Message{ViewID: v.group.ViewID(), Seq: v.nextSeq, Sender: sender, Payload: payload}
	v.pending = append(v.pending, m)
	return m, nil
}

// Flush delivers all pending messages of the current view to every active
// member in sequence order. View synchrony requires a flush before any view
// change; InstallView calls it implicitly.
func (v *ViewSync) Flush() []Delivery {
	sort.Slice(v.pending, func(i, j int) bool { return v.pending[i].Seq < v.pending[j].Seq })
	members := v.group.Members()
	var out []Delivery
	for _, m := range v.pending {
		for _, member := range members {
			d := Delivery{Member: member, Msg: m}
			out = append(out, d)
			v.log = append(v.log, d)
			v.delivered[member] = append(v.delivered[member], m)
		}
	}
	v.pending = v.pending[:0]
	return out
}

// InstallView applies a membership change through the VS layer: it first
// flushes the current view's messages (the VS "safe delivery" barrier) and
// then performs the change on the group.
func (v *ViewSync) InstallView(kind ChangeKind, node int) (ViewChange, error) {
	v.Flush()
	switch kind {
	case ChangeJoin:
		return v.group.Join(node)
	case ChangeLeave:
		return v.group.Leave(node)
	case ChangeEviction:
		return v.group.Evict(node)
	default:
		return ViewChange{}, fmt.Errorf("gcs: unknown change kind %d", int(kind))
	}
}

// DeliveredTo returns the messages delivered to a member in order.
func (v *ViewSync) DeliveredTo(member int) []Message {
	msgs := v.delivered[member]
	out := make([]Message, len(msgs))
	copy(out, msgs)
	return out
}

// Log returns the full delivery log.
func (v *ViewSync) Log() []Delivery {
	out := make([]Delivery, len(v.log))
	copy(out, v.log)
	return out
}

// CheckViewSynchrony verifies the two core invariants over the delivery
// log and returns an error describing the first violation:
//
//  1. Total order: any two members that both delivered messages a and b
//     delivered them in the same relative order.
//  2. View inclusion: every message was delivered only to members, and
//     carries the view it was sequenced in.
func (v *ViewSync) CheckViewSynchrony() error {
	// Total order: because delivery order per member is append-only, it
	// suffices to check each member's sequence numbers are increasing.
	for member, msgs := range v.delivered {
		for i := 1; i < len(msgs); i++ {
			if msgs[i].Seq <= msgs[i-1].Seq {
				return fmt.Errorf("gcs: member %d delivered seq %d after %d",
					member, msgs[i].Seq, msgs[i-1].Seq)
			}
		}
	}
	// Same set per view: group deliveries of one message must agree.
	byMsg := make(map[uint64][]int)
	for _, d := range v.log {
		byMsg[d.Msg.Seq] = append(byMsg[d.Msg.Seq], d.Member)
	}
	byView := make(map[uint64]map[uint64][]int) // view -> seq -> members
	for _, d := range v.log {
		if byView[d.Msg.ViewID] == nil {
			byView[d.Msg.ViewID] = make(map[uint64][]int)
		}
		byView[d.Msg.ViewID][d.Msg.Seq] = byMsg[d.Msg.Seq]
	}
	for view, msgs := range byView {
		var ref []int
		var refSeq uint64
		for seq, members := range msgs {
			sorted := append([]int(nil), members...)
			sort.Ints(sorted)
			if ref == nil {
				ref, refSeq = sorted, seq
				continue
			}
			if len(sorted) != len(ref) {
				return fmt.Errorf("gcs: view %d: messages %d and %d delivered to different member sets",
					view, refSeq, seq)
			}
			for i := range ref {
				if sorted[i] != ref[i] {
					return fmt.Errorf("gcs: view %d: messages %d and %d delivered to different member sets",
						view, refSeq, seq)
				}
			}
		}
	}
	return nil
}
