// Package gcs implements the secure group communication system substrate:
// membership views, view-synchronous (reliable, totally ordered within a
// view) message delivery, join/leave/eviction processing, and group-key
// epochs driven by GDH rekeying. It realizes the system model of Section 3
// of the paper:
//
//   - members share a symmetric group key established contributively,
//   - every membership change (join, voluntary leave, IDS eviction) forces
//     a rekey to preserve forward and backward secrecy,
//   - evicted members can never rejoin (no recovery mechanism),
//   - view synchrony guarantees messages are delivered reliably and in
//     order within a membership view.
package gcs

import (
	"fmt"
	"sort"
)

// MemberStatus tracks the lifecycle of a node with respect to the group.
type MemberStatus int

const (
	// StatusTrusted marks an active member believed healthy.
	StatusTrusted MemberStatus = iota
	// StatusCompromised marks an active member that has been compromised
	// but not yet detected (known to the attacker model, not the system).
	StatusCompromised
	// StatusEvicted marks a node removed by IDS; it can never rejoin.
	StatusEvicted
	// StatusLeft marks a node that departed voluntarily; it may rejoin.
	StatusLeft
)

// String implements fmt.Stringer.
func (s MemberStatus) String() string {
	switch s {
	case StatusTrusted:
		return "trusted"
	case StatusCompromised:
		return "compromised"
	case StatusEvicted:
		return "evicted"
	case StatusLeft:
		return "left"
	default:
		return fmt.Sprintf("MemberStatus(%d)", int(s))
	}
}

// ChangeKind labels a membership change event.
type ChangeKind int

const (
	// ChangeJoin is a node joining the group.
	ChangeJoin ChangeKind = iota
	// ChangeLeave is a voluntary departure.
	ChangeLeave
	// ChangeEviction is a forced removal decided by voting-based IDS.
	ChangeEviction
)

// String implements fmt.Stringer.
func (k ChangeKind) String() string {
	switch k {
	case ChangeJoin:
		return "join"
	case ChangeLeave:
		return "leave"
	case ChangeEviction:
		return "eviction"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(k))
	}
}

// ViewChange records one membership transition.
type ViewChange struct {
	Kind   ChangeKind
	Node   int
	ViewID uint64 // the view installed by this change
	Epoch  uint64 // the key epoch installed by this change
}

// Group is the membership and key-epoch state machine of one mobile group.
type Group struct {
	members map[int]MemberStatus
	viewID  uint64
	epoch   uint64
	history []ViewChange
	// rekeys counts rekey operations (== epoch, kept separate for
	// clarity in tests).
	rekeys uint64
}

// New creates a group with the given initial member IDs, all trusted, in
// view 1 / epoch 1 (the initial key agreement counts as the first rekey).
func New(initialMembers []int) (*Group, error) {
	g := &Group{members: make(map[int]MemberStatus)}
	for _, id := range initialMembers {
		if _, dup := g.members[id]; dup {
			return nil, fmt.Errorf("gcs: duplicate initial member %d", id)
		}
		g.members[id] = StatusTrusted
	}
	g.viewID = 1
	g.epoch = 1
	g.rekeys = 1
	return g, nil
}

// Size returns the number of active members (trusted + undetected
// compromised).
func (g *Group) Size() int {
	n := 0
	for _, st := range g.members {
		if st == StatusTrusted || st == StatusCompromised {
			n++
		}
	}
	return n
}

// CountByStatus returns the number of nodes with the given status.
func (g *Group) CountByStatus(s MemberStatus) int {
	n := 0
	for _, st := range g.members {
		if st == s {
			n++
		}
	}
	return n
}

// ViewID returns the current membership view identifier.
func (g *Group) ViewID() uint64 { return g.viewID }

// Epoch returns the current key epoch; it increments on every rekey.
func (g *Group) Epoch() uint64 { return g.epoch }

// Rekeys returns the number of rekey operations performed, including the
// initial key agreement.
func (g *Group) Rekeys() uint64 { return g.rekeys }

// Status returns the status of a node and whether it is known.
func (g *Group) Status(node int) (MemberStatus, bool) {
	s, ok := g.members[node]
	return s, ok
}

// Members returns the sorted IDs of active members.
func (g *Group) Members() []int {
	out := make([]int, 0, len(g.members))
	for id, st := range g.members {
		if st == StatusTrusted || st == StatusCompromised {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// History returns a copy of the view-change log.
func (g *Group) History() []ViewChange {
	out := make([]ViewChange, len(g.history))
	copy(out, g.history)
	return out
}

func (g *Group) installView(kind ChangeKind, node int) ViewChange {
	g.viewID++
	g.epoch++
	g.rekeys++
	vc := ViewChange{Kind: kind, Node: node, ViewID: g.viewID, Epoch: g.epoch}
	g.history = append(g.history, vc)
	return vc
}

// Join admits a node. Evicted nodes are permanently banned; active members
// cannot rejoin. The join triggers a rekey (backward secrecy).
func (g *Group) Join(node int) (ViewChange, error) {
	switch st, ok := g.members[node]; {
	case ok && st == StatusEvicted:
		return ViewChange{}, fmt.Errorf("gcs: node %d was evicted and cannot rejoin", node)
	case ok && (st == StatusTrusted || st == StatusCompromised):
		return ViewChange{}, fmt.Errorf("gcs: node %d is already a member", node)
	}
	g.members[node] = StatusTrusted
	return g.installView(ChangeJoin, node), nil
}

// Leave removes a voluntarily departing member and rekeys (forward
// secrecy).
func (g *Group) Leave(node int) (ViewChange, error) {
	st, ok := g.members[node]
	if !ok || (st != StatusTrusted && st != StatusCompromised) {
		return ViewChange{}, fmt.Errorf("gcs: node %d is not an active member", node)
	}
	g.members[node] = StatusLeft
	return g.installView(ChangeLeave, node), nil
}

// Evict forcibly removes a member after an IDS verdict and rekeys. The
// node is banned forever.
func (g *Group) Evict(node int) (ViewChange, error) {
	st, ok := g.members[node]
	if !ok || (st != StatusTrusted && st != StatusCompromised) {
		return ViewChange{}, fmt.Errorf("gcs: node %d is not an active member", node)
	}
	g.members[node] = StatusEvicted
	return g.installView(ChangeEviction, node), nil
}

// Compromise marks an active trusted member as compromised (invoked by the
// attacker model; invisible to the group's own bookkeeping of views/keys).
func (g *Group) Compromise(node int) error {
	st, ok := g.members[node]
	if !ok || st != StatusTrusted {
		return fmt.Errorf("gcs: node %d is not a trusted member", node)
	}
	g.members[node] = StatusCompromised
	return nil
}
