package gcs

import (
	"testing"
	"testing/quick"
)

func newGroup(t *testing.T, n int) *Group {
	t.Helper()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	g, err := New(ids)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGroupInitialState(t *testing.T) {
	g := newGroup(t, 10)
	if g.Size() != 10 {
		t.Errorf("Size = %d, want 10", g.Size())
	}
	if g.ViewID() != 1 || g.Epoch() != 1 || g.Rekeys() != 1 {
		t.Errorf("initial view/epoch/rekeys = %d/%d/%d, want 1/1/1", g.ViewID(), g.Epoch(), g.Rekeys())
	}
	if got := g.CountByStatus(StatusTrusted); got != 10 {
		t.Errorf("trusted = %d, want 10", got)
	}
}

func TestNewGroupRejectsDuplicates(t *testing.T) {
	if _, err := New([]int{1, 2, 1}); err == nil {
		t.Fatal("duplicate members accepted")
	}
}

func TestJoinLeaveEvict(t *testing.T) {
	g := newGroup(t, 3)
	vc, err := g.Join(10)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Kind != ChangeJoin || vc.ViewID != 2 || vc.Epoch != 2 {
		t.Errorf("join change = %+v", vc)
	}
	if g.Size() != 4 {
		t.Errorf("Size = %d, want 4", g.Size())
	}
	if _, err := g.Leave(0); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 {
		t.Errorf("Size after leave = %d", g.Size())
	}
	if _, err := g.Evict(1); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 {
		t.Errorf("Size after evict = %d", g.Size())
	}
	if g.Rekeys() != 4 {
		t.Errorf("Rekeys = %d, want 4 (init + 3 changes)", g.Rekeys())
	}
}

func TestEveryMembershipChangeRekeys(t *testing.T) {
	// Forward/backward secrecy: epoch must increment on each change.
	g := newGroup(t, 5)
	ops := []func() (ViewChange, error){
		func() (ViewChange, error) { return g.Join(100) },
		func() (ViewChange, error) { return g.Leave(0) },
		func() (ViewChange, error) { return g.Evict(1) },
		func() (ViewChange, error) { return g.Join(101) },
	}
	prev := g.Epoch()
	for i, op := range ops {
		if _, err := op(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if g.Epoch() != prev+1 {
			t.Fatalf("op %d: epoch %d, want %d", i, g.Epoch(), prev+1)
		}
		prev = g.Epoch()
	}
}

func TestEvictedCannotRejoin(t *testing.T) {
	g := newGroup(t, 3)
	if _, err := g.Evict(2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Join(2); err == nil {
		t.Fatal("evicted node rejoined")
	}
}

func TestLeftCanRejoin(t *testing.T) {
	g := newGroup(t, 3)
	if _, err := g.Leave(2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Join(2); err != nil {
		t.Fatalf("voluntary leaver blocked from rejoining: %v", err)
	}
}

func TestActiveMemberCannotJoinAgain(t *testing.T) {
	g := newGroup(t, 3)
	if _, err := g.Join(1); err == nil {
		t.Fatal("double join accepted")
	}
}

func TestLeaveEvictNonMember(t *testing.T) {
	g := newGroup(t, 3)
	if _, err := g.Leave(99); err == nil {
		t.Error("leave of unknown node accepted")
	}
	if _, err := g.Evict(99); err == nil {
		t.Error("evict of unknown node accepted")
	}
	g.Leave(0)
	if _, err := g.Leave(0); err == nil {
		t.Error("double leave accepted")
	}
	if _, err := g.Evict(0); err == nil {
		t.Error("evicting a departed node accepted")
	}
}

func TestCompromiseBookkeeping(t *testing.T) {
	g := newGroup(t, 4)
	if err := g.Compromise(1); err != nil {
		t.Fatal(err)
	}
	// Compromise is attacker-side: no rekey, no view change.
	if g.Epoch() != 1 || g.ViewID() != 1 {
		t.Error("compromise must not rekey")
	}
	if g.CountByStatus(StatusCompromised) != 1 || g.CountByStatus(StatusTrusted) != 3 {
		t.Error("status counts wrong after compromise")
	}
	// Compromised member still counts as active and can be evicted.
	if g.Size() != 4 {
		t.Errorf("Size = %d, want 4", g.Size())
	}
	if err := g.Compromise(1); err == nil {
		t.Error("double compromise accepted")
	}
	if err := g.Compromise(77); err == nil {
		t.Error("compromise of unknown node accepted")
	}
	if _, err := g.Evict(1); err != nil {
		t.Fatalf("evicting compromised member: %v", err)
	}
}

func TestCompromisedMemberCanSendAndLeave(t *testing.T) {
	g := newGroup(t, 3)
	g.Compromise(0)
	vs := NewViewSync(g)
	if _, err := vs.Send(0, "insider data request"); err != nil {
		t.Fatalf("undetected compromised member blocked from sending: %v", err)
	}
	if _, err := g.Leave(0); err != nil {
		t.Fatalf("compromised member blocked from leaving: %v", err)
	}
}

func TestMembersSorted(t *testing.T) {
	g, err := New([]int{5, 3, 9, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := g.Members()
	want := []int{1, 3, 5, 9}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("Members = %v, want %v", m, want)
		}
	}
}

func TestHistoryRecordsChanges(t *testing.T) {
	g := newGroup(t, 2)
	g.Join(10)
	g.Leave(0)
	h := g.History()
	if len(h) != 2 {
		t.Fatalf("history length %d, want 2", len(h))
	}
	if h[0].Kind != ChangeJoin || h[0].Node != 10 {
		t.Errorf("h[0] = %+v", h[0])
	}
	if h[1].Kind != ChangeLeave || h[1].Node != 0 {
		t.Errorf("h[1] = %+v", h[1])
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusTrusted.String() != "trusted" || StatusCompromised.String() != "compromised" ||
		StatusEvicted.String() != "evicted" || StatusLeft.String() != "left" {
		t.Error("MemberStatus strings wrong")
	}
	if ChangeJoin.String() != "join" || ChangeLeave.String() != "leave" || ChangeEviction.String() != "eviction" {
		t.Error("ChangeKind strings wrong")
	}
	if MemberStatus(9).String() == "" || ChangeKind(9).String() == "" {
		t.Error("unknown enum Strings empty")
	}
}

func TestSizeInvariantProperty(t *testing.T) {
	// Random op sequences: Size always equals trusted + compromised, and
	// epoch equals 1 + number of successful membership changes.
	f := func(ops []uint8) bool {
		g, err := New([]int{0, 1, 2, 3, 4})
		if err != nil {
			return false
		}
		changes := uint64(0)
		nextID := 5
		for _, op := range ops {
			var err error
			switch op % 4 {
			case 0:
				_, err = g.Join(nextID)
				nextID++
			case 1:
				_, err = g.Leave(int(op) % nextID)
			case 2:
				_, err = g.Evict(int(op) % nextID)
			case 3:
				err = g.Compromise(int(op) % nextID)
				if err == nil {
					// not a membership change
					continue
				}
				continue
			}
			if err == nil {
				changes++
			}
			if g.Size() != g.CountByStatus(StatusTrusted)+g.CountByStatus(StatusCompromised) {
				return false
			}
		}
		return g.Epoch() == 1+changes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
