package gcs

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestSendDeliversToAllMembers(t *testing.T) {
	g := newGroup(t, 3)
	vs := NewViewSync(g)
	if _, err := vs.Send(0, "hello"); err != nil {
		t.Fatal(err)
	}
	ds := vs.Flush()
	if len(ds) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(ds))
	}
	for _, d := range ds {
		if d.Msg.Payload != "hello" || d.Msg.Sender != 0 {
			t.Errorf("bad delivery %+v", d)
		}
	}
}

func TestSendFromNonMemberRejected(t *testing.T) {
	g := newGroup(t, 2)
	vs := NewViewSync(g)
	if _, err := vs.Send(55, "x"); err == nil {
		t.Fatal("non-member send accepted")
	}
	g.Evict(1)
	if _, err := vs.Send(1, "x"); err == nil {
		t.Fatal("evicted member send accepted")
	}
}

func TestTotalOrderAcrossMembers(t *testing.T) {
	g := newGroup(t, 4)
	vs := NewViewSync(g)
	for i := 0; i < 20; i++ {
		if _, err := vs.Send(i%4, fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	vs.Flush()
	ref := vs.DeliveredTo(0)
	for member := 1; member < 4; member++ {
		msgs := vs.DeliveredTo(member)
		if len(msgs) != len(ref) {
			t.Fatalf("member %d delivered %d msgs, member 0 delivered %d", member, len(msgs), len(ref))
		}
		for i := range ref {
			if msgs[i].Seq != ref[i].Seq {
				t.Fatalf("member %d order diverges at %d", member, i)
			}
		}
	}
	if err := vs.CheckViewSynchrony(); err != nil {
		t.Fatal(err)
	}
}

func TestViewChangeFlushesFirst(t *testing.T) {
	// A message sent before a join must be delivered only to the old
	// view's members (VS barrier), not to the joiner.
	g := newGroup(t, 2)
	vs := NewViewSync(g)
	vs.Send(0, "before-join")
	if _, err := vs.InstallView(ChangeJoin, 10); err != nil {
		t.Fatal(err)
	}
	if got := len(vs.DeliveredTo(10)); got != 0 {
		t.Fatalf("joiner received %d pre-join messages", got)
	}
	if got := len(vs.DeliveredTo(0)); got != 1 {
		t.Fatalf("old member received %d messages, want 1", got)
	}
	// A message sent after the join reaches the joiner.
	vs.Send(0, "after-join")
	vs.Flush()
	if got := len(vs.DeliveredTo(10)); got != 1 {
		t.Fatalf("joiner received %d post-join messages, want 1", got)
	}
	if err := vs.CheckViewSynchrony(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionBarredFromFutureTraffic(t *testing.T) {
	g := newGroup(t, 3)
	vs := NewViewSync(g)
	if _, err := vs.InstallView(ChangeEviction, 2); err != nil {
		t.Fatal(err)
	}
	vs.Send(0, "secret")
	vs.Flush()
	if got := len(vs.DeliveredTo(2)); got != 0 {
		t.Fatalf("evicted node received %d messages", got)
	}
}

func TestInstallViewUnknownKind(t *testing.T) {
	g := newGroup(t, 2)
	vs := NewViewSync(g)
	if _, err := vs.InstallView(ChangeKind(42), 0); err == nil {
		t.Fatal("unknown change kind accepted")
	}
}

func TestMessagesCarryCurrentView(t *testing.T) {
	g := newGroup(t, 2)
	vs := NewViewSync(g)
	m1, _ := vs.Send(0, "v1")
	if m1.ViewID != 1 {
		t.Errorf("msg view = %d, want 1", m1.ViewID)
	}
	vs.InstallView(ChangeJoin, 5)
	m2, _ := vs.Send(0, "v2")
	if m2.ViewID != 2 {
		t.Errorf("msg view = %d, want 2", m2.ViewID)
	}
}

func TestViewSynchronyInvariantUnderRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := newGroup(t, 6)
	vs := NewViewSync(g)
	nextID := 6
	for step := 0; step < 300; step++ {
		switch rng.Intn(4) {
		case 0, 1:
			members := g.Members()
			if len(members) > 0 {
				vs.Send(members[rng.Intn(len(members))], "payload")
			}
		case 2:
			vs.InstallView(ChangeJoin, nextID)
			nextID++
		case 3:
			members := g.Members()
			if len(members) > 1 {
				kind := ChangeLeave
				if rng.Intn(2) == 0 {
					kind = ChangeEviction
				}
				vs.InstallView(kind, members[rng.Intn(len(members))])
			}
		}
	}
	vs.Flush()
	if err := vs.CheckViewSynchrony(); err != nil {
		t.Fatal(err)
	}
	if len(vs.Log()) == 0 {
		t.Fatal("no deliveries recorded")
	}
}
