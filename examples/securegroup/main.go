// Secure group walkthrough: the cryptographic substrate beneath the
// paper's model, end to end — certified identities, challenge/response
// join admission, GDH.2 contributory rekeying, epoch-bound group-key
// encryption, and the two secrecy properties (forward/backward) that make
// eviction meaningful. It also shows the C1 premise: a compromised member
// reads everything until the voting IDS evicts it.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/secgroup"
)

func main() {
	g, err := secgroup.New([]int{1, 2, 3}, nil)
	if err != nil {
		log.Fatalf("securegroup: %v", err)
	}
	fmt.Printf("deployed group %v at key epoch %d\n", g.Members(), g.Epoch())

	// Normal traffic: every member reads.
	env, err := g.Send(1, []byte("advance to waypoint 4"))
	if err != nil {
		log.Fatalf("securegroup: %v", err)
	}
	pt, err := g.Receive(3, env, 1)
	if err != nil {
		log.Fatalf("securegroup: %v", err)
	}
	fmt.Printf("member 3 reads: %q\n", pt)

	// A new node authenticates and joins; the group rekeys.
	joiner, err := g.Authority().Enroll(4, time.Unix(1<<40, 0), nil)
	if err != nil {
		log.Fatalf("securegroup: %v", err)
	}
	if err := g.Join(joiner); err != nil {
		log.Fatalf("securegroup: %v", err)
	}
	fmt.Printf("node 4 authenticated and joined; epoch now %d\n", g.Epoch())

	// Backward secrecy: the joiner cannot read the pre-join envelope.
	if _, err := g.Receive(4, env, 1); err != nil {
		fmt.Printf("backward secrecy holds: joiner cannot read old traffic (%v)\n", err)
	}

	// An insider is compromised. Until detection it reads everything —
	// the race behind the paper's C1 failure condition.
	if err := g.Compromise(2); err != nil {
		log.Fatalf("securegroup: %v", err)
	}
	secret, err := g.Send(1, []byte("tonight's extraction point"))
	if err != nil {
		log.Fatalf("securegroup: %v", err)
	}
	if leaked, err := g.Receive(2, secret, 1); err == nil {
		fmt.Printf("compromised member 2 (undetected) still reads: %q  <-- this is condition C1's window\n", leaked)
	}

	// The voting IDS convicts node 2; eviction rekeys the group.
	if err := g.Evict(2); err != nil {
		log.Fatalf("securegroup: %v", err)
	}
	fmt.Printf("IDS evicted node 2; epoch now %d\n", g.Epoch())

	// Forward secrecy: the evicted node is locked out of new traffic...
	after, err := g.Send(1, []byte("new extraction point"))
	if err != nil {
		log.Fatalf("securegroup: %v", err)
	}
	if _, err := g.Receive(2, after, 1); err != nil {
		fmt.Printf("forward secrecy holds: evicted node locked out (%v)\n", err)
	}
	// ...and cannot rejoin even with valid credentials.
	banned, err := g.Authority().Enroll(2, time.Unix(1<<40, 0), nil)
	if err != nil {
		log.Fatalf("securegroup: %v", err)
	}
	if err := g.Join(banned); err != nil {
		fmt.Printf("eviction is permanent: %v\n", err)
	}

	fmt.Printf("\ntotal GDH rekey traffic: %d group elements across %d epochs\n",
		g.RekeyTraffic, g.Epoch())
}
