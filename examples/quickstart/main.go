// Quickstart: evaluate the default configuration (the paper's Section 5
// environment, scaled down so it runs in about a second) and print the two
// headline metrics with their supporting detail.
//
// With -server it runs the same analysis against a running evaluation
// server (cmd/server) over the HTTP/JSON API instead of solving in
// process: the TIDS sweep goes through repro.Client.EvalBatch and the
// closing line reports how much of it the server answered from its
// (possibly snapshot-warmed) cache. The CI smoke job drives this mode
// twice around a server restart and asserts the second run is served warm.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	server := flag.String("server", "", "base URL of a running cmd/server (empty = evaluate in process)")
	n := flag.Int("n", 40, "group size N (paper uses 100; 40 keeps the demo fast)")
	printPoints := flag.Bool("print", false, "emit one machine-diffable line per TIDS grid point (CI compares runs with diff)")
	flag.Parse()

	cfg := repro.DefaultConfig()
	cfg.N = *n

	var (
		res  *repro.Result
		opt  *repro.Optimum
		grid []*repro.Result
		err  error
	)
	if *server == "" {
		res, opt, grid, err = runLocal(cfg)
	} else {
		res, opt, grid, err = runRemote(*server, cfg)
	}
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	if *printPoints {
		// One line per grid point, every float at full diffable precision:
		// the CI cluster smoke job runs this against a single node and
		// against a 3-node coordinator and requires the outputs to agree.
		for i, r := range grid {
			fmt.Printf("TIDS=%g MTTSF=%.9e Ctotal=%.9e ProbC1=%.9e ProbC2=%.9e\n",
				repro.PaperTIDSGrid[i], r.MTTSF, r.Ctotal, r.ProbC1, r.ProbC2)
		}
	}

	fmt.Println("=== voting-based IDS for a mobile group communication system ===")
	fmt.Printf("group size N=%d, m=%d voters, host IDS errors p1=p2=%.0f%%\n",
		cfg.N, cfg.M, cfg.P1*100)
	fmt.Printf("attacker: %v (one node per %.0f h base), detection: %v every %.0f s\n",
		cfg.Attacker, 1/cfg.LambdaC/3600, cfg.Detection, cfg.TIDS)
	fmt.Println()
	fmt.Printf("MTTSF (mean time to security failure): %.4g s = %.1f days\n",
		res.MTTSF, res.MTTSF/86400)
	fmt.Printf("Ctotal (traffic): %.4g hop·bits/s = %.2f%% of the 1 Mb/s channel\n",
		res.Ctotal, 100*res.Utilization)
	fmt.Printf("how missions end: %.0f%% data leak (C1), %.0f%% byzantine takeover (C2)\n",
		100*res.ProbC1, 100*res.ProbC2)
	fmt.Println()
	fmt.Printf("optimal TIDS on the paper's grid: %.0f s (MTTSF %.4g s, %+.0f%% vs current)\n",
		opt.TIDS, opt.Result.MTTSF, 100*(opt.Result.MTTSF/res.MTTSF-1))
}

// runLocal evaluates in process through the default memoizing engine.
func runLocal(cfg repro.Config) (*repro.Result, *repro.Optimum, []*repro.Result, error) {
	res, err := repro.Analyze(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	// The full grid, for -print; the memoizing default engine shares these
	// solves with the optimum scan below.
	cfgs := make([]repro.Config, len(repro.PaperTIDSGrid))
	for i, tids := range repro.PaperTIDSGrid {
		cfgs[i] = cfg
		cfgs[i].TIDS = tids
	}
	grid, err := repro.EvalBatch(cfgs)
	if err != nil {
		return nil, nil, nil, err
	}
	// The design question: which detection interval maximizes survival?
	opt, err := repro.OptimalTIDSForMTTSF(cfg, repro.PaperTIDSGrid)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, opt, grid, nil
}

// runRemote runs the identical analysis against a server: one batch over
// the paper's TIDS grid (plus the configured point), optimum picked
// client-side, and a stats line showing how warm the server's cache was.
func runRemote(baseURL string, cfg repro.Config) (*repro.Result, *repro.Optimum, []*repro.Result, error) {
	client := repro.NewClient(baseURL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := client.Health(ctx); err != nil {
		return nil, nil, nil, fmt.Errorf("server not healthy: %w", err)
	}

	cfgs := []repro.Config{cfg}
	for _, tids := range repro.PaperTIDSGrid {
		c := cfg
		c.TIDS = tids
		cfgs = append(cfgs, c)
	}
	results, err := client.EvalBatch(ctx, cfgs)
	if err != nil {
		return nil, nil, nil, err
	}
	res := results[0]
	opt := &repro.Optimum{}
	for i, r := range results[1:] {
		if opt.Result == nil || r.MTTSF > opt.Result.MTTSF {
			opt.TIDS = repro.PaperTIDSGrid[i]
			opt.Result = r
		}
	}

	if st, err := client.Stats(ctx); err == nil {
		lookups := st.Engine.Hits + st.Engine.Misses
		warm := 0.0
		if lookups > 0 {
			warm = 100 * float64(st.Engine.Hits) / float64(lookups)
		}
		fmt.Printf("server %s: evals=%d hits=%d lookups=%d (%.0f%% warm), %d cached results\n",
			baseURL, st.Engine.Evals, st.Engine.Hits, lookups, warm, st.Engine.Entries)
	}
	return res, opt, results[1:], nil
}
