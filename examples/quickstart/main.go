// Quickstart: evaluate the default configuration (the paper's Section 5
// environment, scaled to N=40 so it runs in about a second) and print the
// two headline metrics with their supporting detail.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig()
	cfg.N = 40 // paper uses 100; 40 keeps this demo under a second

	res, err := repro.Analyze(cfg)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Println("=== voting-based IDS for a mobile group communication system ===")
	fmt.Printf("group size N=%d, m=%d voters, host IDS errors p1=p2=%.0f%%\n",
		cfg.N, cfg.M, cfg.P1*100)
	fmt.Printf("attacker: %v (one node per %.0f h base), detection: %v every %.0f s\n",
		cfg.Attacker, 1/cfg.LambdaC/3600, cfg.Detection, cfg.TIDS)
	fmt.Println()
	fmt.Printf("MTTSF (mean time to security failure): %.4g s = %.1f days\n",
		res.MTTSF, res.MTTSF/86400)
	fmt.Printf("Ctotal (traffic): %.4g hop·bits/s = %.2f%% of the 1 Mb/s channel\n",
		res.Ctotal, 100*res.Utilization)
	fmt.Printf("how missions end: %.0f%% data leak (C1), %.0f%% byzantine takeover (C2)\n",
		100*res.ProbC1, 100*res.ProbC2)
	fmt.Println()

	// The design question: which detection interval maximizes survival?
	opt, err := repro.OptimalTIDSForMTTSF(cfg, repro.PaperTIDSGrid)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	fmt.Printf("optimal TIDS on the paper's grid: %.0f s (MTTSF %.4g s, %+.0f%% vs current)\n",
		opt.TIDS, opt.Result.MTTSF, 100*(opt.Result.MTTSF/res.MTTSF-1))
}
