// Adaptive IDS: the runtime loop the paper's Section 5 envisions. A
// defending system observes compromise-detection timestamps, classifies
// the attacker's strength function (logarithmic / linear / polynomial),
// and switches to the matching detection function and optimal interval.
//
// The demo simulates a polynomial ("increasingly fast") attacker, shows
// that the classifier identifies it from the observed compromise times,
// and quantifies the MTTSF gained by responding in kind versus staying on
// the default linear detection.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/shapes"
)

func main() {
	const nInit = 40
	trueAttacker := repro.Polynomial

	// --- Phase 1: observe the attacker. -----------------------------
	// Synthesize the compromise timestamps an IDS log would contain:
	// inter-compromise gaps are exponential with the attacker's
	// state-dependent rate.
	rng := rand.New(rand.NewSource(7))
	attack := shapes.Attacker{Kind: shapes.Kind(trueAttacker), LambdaC: 1.0 / (6 * 3600)}
	var times []float64
	now := 0.0
	for i := 0; i < 25; i++ {
		mc := shapes.Pressure(nInit-i, i)
		now += rng.ExpFloat64() / attack.Rate(mc)
		times = append(times, now)
	}
	fmt.Printf("observed %d compromises over %.1f hours\n", len(times), now/3600)

	// --- Phase 2: classify the attacker. ------------------------------
	kind, err := repro.ClassifyAttacker(times, nInit)
	if err != nil {
		log.Fatalf("adaptiveids: %v", err)
	}
	fmt.Printf("classifier verdict: %v attacker (truth: %v)\n", kind, trueAttacker)

	// --- Phase 3: choose the best defense for the classified attacker
	// by sweeping all three detection functions over the TIDS grid, and
	// quantify the gain over the static default.
	cfg := repro.DefaultConfig()
	cfg.N = nInit
	cfg.Attacker = trueAttacker // nature plays the true attacker

	baseline := cfg // static defense: linear detection at the default TIDS
	baseRes, err := repro.Analyze(baseline)
	if err != nil {
		log.Fatalf("adaptiveids: %v", err)
	}

	planner := cfg
	planner.Attacker = kind // the defender plans against the *classified* kind
	bestKind, bestTIDS, _, err := repro.BestDetection(planner, repro.PaperTIDSGrid)
	if err != nil {
		log.Fatalf("adaptiveids: %v", err)
	}
	// Deploy the plan against the true attacker.
	deployed := cfg
	deployed.Detection = bestKind
	deployed.TIDS = bestTIDS
	depRes, err := repro.Analyze(deployed)
	if err != nil {
		log.Fatalf("adaptiveids: %v", err)
	}

	fmt.Println()
	fmt.Printf("static defense   (%v @ %3.0f s): MTTSF = %.4g s\n",
		baseline.Detection, baseline.TIDS, baseRes.MTTSF)
	fmt.Printf("adaptive defense (%v @ %3.0f s): MTTSF = %.4g s\n",
		bestKind, bestTIDS, depRes.MTTSF)
	fmt.Printf("adaptation gain: %+.0f%%\n", 100*(depRes.MTTSF/baseRes.MTTSF-1))
}
