// Simulation: run the protocol-granular Monte Carlo engine next to the
// analytical SPN/CTMC model on the same configuration and compare. This is
// the library's built-in validation story — the simulator draws real vote
// panels round by round, while the analytical model uses the Equation 1
// closed form, so agreement is evidence both are right.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultConfig()
	cfg.N = 25
	cfg.TIDS = 60

	// Analytical answer.
	ana, err := repro.Analyze(cfg)
	if err != nil {
		log.Fatalf("simulation: %v", err)
	}

	// Monte Carlo answer (50 missions).
	runner, err := repro.NewSimulator(cfg)
	if err != nil {
		log.Fatalf("simulation: %v", err)
	}
	est, err := runner.EstimateMTTSF(50, 1e9, 2026)
	if err != nil {
		log.Fatalf("simulation: %v", err)
	}

	fmt.Printf("configuration: N=%d, m=%d, TIDS=%.0f s, %v attacker\n",
		cfg.N, cfg.M, cfg.TIDS, cfg.Attacker)
	fmt.Println()
	fmt.Printf("%-22s %16s %16s\n", "", "analytical", "Monte Carlo")
	fmt.Printf("%-22s %16.5g %10.5g ±%.2g\n", "MTTSF (s)", ana.MTTSF, est.MTTSF.Mean, est.MTTSF.CI95)
	fmt.Printf("%-22s %16.5g %10.5g ±%.2g\n", "Ctotal (hop·bits/s)", ana.Ctotal, est.AvgCost.Mean, est.AvgCost.CI95)
	fmt.Printf("%-22s %15.1f%% %15.1f%%\n", "failures via C1", 100*ana.ProbC1, 100*est.CauseC1Frac)
	fmt.Printf("%-22s %15.1f%% %15.1f%%\n", "failures via C2", 100*ana.ProbC2, 100*est.CauseC2Frac)
	fmt.Println()

	ratio := est.MTTSF.Mean / ana.MTTSF
	fmt.Printf("simulation/analytical MTTSF ratio: %.3f", ratio)
	if ratio > 0.8 && ratio < 1.25 {
		fmt.Println("  (models agree)")
	} else {
		fmt.Println("  (models diverge beyond the expected band — investigate!)")
	}

	// Per-mission anatomy of the first few replications.
	fmt.Println("\nsample missions:")
	for seed := int64(0); seed < 5; seed++ {
		out, err := runner.Run(seed, 1e9)
		if err != nil {
			log.Fatalf("simulation: %v", err)
		}
		fmt.Printf("  seed %d: lived %8.3g s, %2d compromised, %2d evicted (%d falsely), ended by %v\n",
			seed, out.TimeToFailure, out.Compromises, out.Detections, out.FalseEvictions, out.Cause)
	}
}
