// Mission planning: the paper's motivating scenario. A rescue team (or
// combat unit) must survive a 48-hour mission on a shared 1 Mb/s channel
// where the application needs most of the bandwidth. The planner:
//
//  1. calibrates group dynamics from the team's mobility profile,
//  2. finds the detection interval that maximizes MTTSF subject to a
//     communication budget (so IDS traffic cannot starve the mission),
//  3. checks the mission-time requirement against the resulting MTTSF.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		missionHours = 48.0
		// The full group-communication + IDS stack may use at most 9% of
		// the 1 Mb/s channel, leaving the rest for the mission payload.
		budgetHopBits = 90_000.0
	)

	// --- Step 1: calibrate mobility. ---------------------------------
	gd, err := repro.CalibrateMobility(repro.CalibrateOpts{
		Nodes:      40,
		RadioRange: 250,
		Duration:   2 * 3600,
		Dt:         10,
		Seed:       42,
	})
	if err != nil {
		log.Fatalf("mission: %v", err)
	}
	fmt.Printf("mobility calibration: partition %.2g/s, merge %.2g/s, %.2f mean hops\n",
		gd.PartitionRate, gd.MergeRate, gd.MeanHops)

	cfg := repro.DefaultConfig()
	cfg.N = 40
	cfg, err = repro.ApplyDynamicsChecked(cfg, gd)
	if err != nil {
		log.Fatalf("mission: bad calibration: %v", err)
	}

	// --- Step 2: budgeted optimization. -------------------------------
	opt, err := repro.ConstrainedOptimum(cfg, repro.PaperTIDSGrid, budgetHopBits)
	if err != nil {
		log.Fatalf("mission: no feasible plan: %v", err)
	}
	fmt.Printf("budgeted plan: TIDS = %.0f s -> MTTSF %.4g s, Ctotal %.4g hop·bits/s (budget %.3g)\n",
		opt.TIDS, opt.Result.MTTSF, opt.Result.Ctotal, budgetHopBits)

	// For contrast: the unconstrained best and what it would cost.
	free, err := repro.OptimalTIDSForMTTSF(cfg, repro.PaperTIDSGrid)
	if err != nil {
		log.Fatalf("mission: %v", err)
	}
	fmt.Printf("unconstrained: TIDS = %.0f s -> MTTSF %.4g s, Ctotal %.4g hop·bits/s\n",
		free.TIDS, free.Result.MTTSF, free.Result.Ctotal)

	// --- Step 3: verdict against the mission requirement. -------------
	need := missionHours * 3600
	fmt.Println()
	if opt.Result.MTTSF >= need {
		fmt.Printf("VERDICT: plan meets the %.0f-hour mission with margin %.1fx\n",
			missionHours, opt.Result.MTTSF/need)
	} else {
		fmt.Printf("VERDICT: plan falls short of the %.0f-hour mission (MTTSF %.1f h); ",
			missionHours, opt.Result.MTTSF/3600)
		fmt.Println("consider more vote participants (m) or a better host IDS (lower p1/p2)")
	}
}
